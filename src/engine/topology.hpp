// Hardware topology, plane memory, and the intra-cell worker team.
//
// The batch planes won the per-instruction fight (SIMD passes, word masks);
// what is left between the engine and the hardware limit is placement —
// which pages back a plane, which core runs which replica block.  This
// header owns all three placement layers:
//
//   * HwTopology — a small explicit model of the machine (logical CPUs,
//     physical cores, SMT siblings, NUMA nodes) parsed from Linux sysfs
//     with a portable fallback (everything one core, one node).  Consumers
//     never re-parse sysfs: detect() caches one instance per process.
//   * Plane memory — PlaneVector<T>, a std::vector whose allocator hands
//     out 64-byte-aligned memory (full-width AVX-512 loads) and, for
//     multi-megabyte planes, 2 MiB-aligned regions advised MADV_HUGEPAGE.
//     Wide batches live or die on this: at B=256 the visit/occupancy rows
//     are multi-MB lane-major arrays walked with per-robot scattered
//     accesses, and 4 KiB pages thrash the TLB long before the cache gives
//     out.  NUMA placement follows from first-touch: planes are touched by
//     the thread that allocates them, so a SweepRunner worker pinned to a
//     node allocates its cell's planes node-locally with no explicit mbind.
//   * WorkerTeam — a persistent spin-then-park thread pool sized and
//     pinned via HwTopology (physical cores first, SMT siblings last).
//     Batch rounds are tens of microseconds, so handing out work through a
//     condition variable per round would cost more than the work; the team
//     publishes a job through one atomic generation counter, workers spin
//     briefly before parking, and the caller participates as slot 0.
//     BatchEngine splits replica-block ranges across the team — every
//     parallel section writes only lane-indexed state, so results are
//     bit-identical to the serial pass by construction (see
//     batch_engine.cpp).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

namespace pef {

// ---------------------------------------------------------------------------
// HwTopology

struct HwTopology {
  /// Logical CPUs visible to this process (>= 1).
  std::uint32_t logical_cpus = 1;
  /// Distinct physical cores backing them (>= 1; == logical_cpus when SMT
  /// is off or the parse fell back).
  std::uint32_t physical_cores = 1;
  /// NUMA nodes (>= 1).
  std::uint32_t numa_nodes = 1;
  /// core_of_cpu[cpu] = physical core id (dense, 0-based).
  std::vector<std::uint32_t> core_of_cpu;
  /// numa_of_cpu[cpu] = NUMA node id (dense, 0-based).
  std::vector<std::uint32_t> numa_of_cpu;
  /// True when the numbers came from sysfs rather than the portable
  /// fallback (std::thread::hardware_concurrency, one core = one cpu).
  bool from_sysfs = false;

  /// CPU ids in pinning priority order: one CPU per physical core first
  /// (round-robin across NUMA nodes), then the SMT siblings.  Worker i of
  /// a team pins to pin_order[i % size] — workers land on distinct cores
  /// until the cores run out, which is what a compute-bound batch wants.
  std::vector<std::uint32_t> pin_order;

  /// The process-wide instance (parsed once, never changes).
  [[nodiscard]] static const HwTopology& detect();

  /// Parse-from-scratch entry point, exposed for tests; `sysfs_root`
  /// defaults to "/sys" and a missing/partial tree yields the fallback.
  [[nodiscard]] static HwTopology parse(const char* sysfs_root);
};

/// Pin the calling thread to one logical CPU.  Returns false (and leaves
/// affinity untouched) off Linux or when the syscall fails — pinning is an
/// optimization, never a correctness requirement.
bool pin_current_thread(std::uint32_t cpu);

// ---------------------------------------------------------------------------
// Plane memory

/// Allocate `bytes` for a state plane: always 64-byte aligned; regions of
/// at least kHugePlaneBytes are 2 MiB-aligned and advised MADV_HUGEPAGE so
/// the kernel backs them with huge pages even under THP=madvise (the
/// common server default).  Pages are committed on first touch, so the
/// touching thread's NUMA node hosts them.
inline constexpr std::size_t kHugePlaneBytes = std::size_t{2} << 20;
[[nodiscard]] void* plane_alloc(std::size_t bytes);
void plane_free(void* p, std::size_t bytes) noexcept;

/// Minimal allocator over plane_alloc/plane_free.
template <typename T>
struct PlaneAllocator {
  using value_type = T;
  PlaneAllocator() noexcept = default;
  template <typename U>
  PlaneAllocator(const PlaneAllocator<U>&) noexcept {}
  [[nodiscard]] T* allocate(std::size_t n) {
    return static_cast<T*>(plane_alloc(n * sizeof(T)));
  }
  void deallocate(T* p, std::size_t n) noexcept {
    plane_free(p, n * sizeof(T));
  }
  template <typename U>
  bool operator==(const PlaneAllocator<U>&) const noexcept {
    return true;
  }
};

/// The replica-SoA planes' container: std::vector semantics, plane-backed
/// storage.
template <typename T>
using PlaneVector = std::vector<T, PlaneAllocator<T>>;

// ---------------------------------------------------------------------------
// WorkerTeam

class WorkerTeam {
 public:
  /// A team of `slots` executors: the caller of run() plus slots-1 pinned
  /// worker threads (slots <= 1 spawns nothing and run() degenerates to a
  /// direct call).  Workers pin to HwTopology::detect().pin_order —
  /// distinct physical cores first — when the machine has that many CPUs.
  explicit WorkerTeam(std::uint32_t slots);
  ~WorkerTeam();
  WorkerTeam(const WorkerTeam&) = delete;
  WorkerTeam& operator=(const WorkerTeam&) = delete;

  [[nodiscard]] std::uint32_t slots() const { return slots_; }

  /// Execute job(ctx, slot) once per slot in [0, slots); the caller runs
  /// slot 0 and the call returns when every slot finished.  The job must
  /// partition its work by slot index into disjoint state — the team adds
  /// no synchronization beyond the end-of-job barrier.
  void run(void (*job)(void*, std::uint32_t), void* ctx);

  /// Type-safe wrapper: fn(slot).
  template <typename Fn>
  void for_each_slot(Fn&& fn) {
    run(
        [](void* ctx, std::uint32_t slot) {
          (*static_cast<Fn*>(ctx))(slot);
        },
        &fn);
  }

 private:
  void worker_main(std::uint32_t slot);

  std::uint32_t slots_ = 1;
  std::atomic<std::uint64_t> generation_{0};
  std::atomic<std::uint32_t> pending_{0};
  std::atomic<bool> stop_{false};
  void (*job_)(void*, std::uint32_t) = nullptr;
  void* ctx_ = nullptr;

  // Park/wake path, taken only after a worker has spun idle for a while
  // (between batches, not between rounds).
  std::mutex mutex_;
  std::condition_variable cv_;
  std::atomic<std::uint32_t> parked_{0};

  std::vector<std::thread> threads_;
};

}  // namespace pef
