// Engine — the unified throughput execution core.
//
// One engine, three execution models (the paper's Section 1 taxonomy), two
// Compute dispatch paths:
//
//   model axis (ExecutionModel):
//     FSYNC - every robot runs an atomic Look-Compute-Move every round
//             (the paper's model; reference: scheduler/Simulator);
//     SSYNC - an ActivationPolicy selects a subset each round, only
//             selected robots run L-C-M (reference: SsyncSimulator);
//     ASYNC - a PhaseScheduler advances each robot through its own
//             Look / Compute / Move machine one phase per tick, with
//             possibly-stale views (reference: AsyncSimulator).
//
//   dispatch axis (ComputeDispatch):
//     kernel  - the algorithm's devirtualized twin (robot/kernel.hpp,
//               algorithms/kernels.hpp): enum-dispatched compute over POD
//               state held in one contiguous vector;
//     virtual - the canonical Algorithm interface (heap AlgorithmState,
//               virtual compute), kept as the reference path.
//
// Differential tests (tests/fast_engine_test.cpp and
// tests/unified_engine_test.cpp) pin every (model, dispatch) combination to
// its reference engine round-by-round, so any cell of the cross product can
// be used interchangeably — the engine is simply faster:
//
//   * struct-of-arrays robot state: parallel vectors for node, local dir,
//     chirality and (kernel path) POD algorithm memory;
//   * a per-node occupancy histogram maintained incrementally, making the
//     Look phase's multiplicity predicate O(1) per robot;
//   * a reusable EdgeSet scratch buffer: oblivious schedules and SSYNC
//     adversaries refill it in place (choose_edges_into) — zero allocation
//     per round;
//   * reusable activation/phase masks: policies fill a persistent byte
//     buffer instead of returning a fresh vector<bool> per round;
//   * one persistent Configuration mirror updated in place (O(moves) per
//     round) for adaptive adversaries and SSYNC/ASYNC policies, never a
//     fresh snapshot per round;
//   * snapshot() / trace materialization only on demand — with trace
//     recording off, the engine keeps only O(n + k) state and a handful of
//     incrementally maintained aggregates.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "adversary/adversary.hpp"
#include "analysis/coverage.hpp"
#include "common/types.hpp"
#include "engine/cycle.hpp"
#include "robot/algorithm.hpp"
#include "robot/kernel.hpp"
#include "robot/robot.hpp"
#include "scheduler/async.hpp"
#include "scheduler/ssync.hpp"
#include "scheduler/trace.hpp"

namespace pef {

/// The activation model an Engine runs (the paper's Section 1 taxonomy).
enum class ExecutionModel : std::uint8_t {
  kFsync = 0,
  kSsync = 1,
  kAsync = 2,
};

[[nodiscard]] constexpr const char* to_string(ExecutionModel m) {
  switch (m) {
    case ExecutionModel::kFsync:
      return "fsync";
    case ExecutionModel::kSsync:
      return "ssync";
    case ExecutionModel::kAsync:
      return "async";
  }
  return "?";
}

/// Parse "fsync" | "ssync" | "async"; nullopt on anything else.
[[nodiscard]] std::optional<ExecutionModel> parse_execution_model(
    const std::string& name);

/// How the engine runs the Compute phase.
enum class ComputeDispatch : std::uint8_t {
  /// Kernel when the algorithm provides one, else virtual (the default).
  kAuto = 0,
  /// Devirtualized kernel; constructing an Engine for an algorithm without
  /// a kernel aborts.
  kKernel = 1,
  /// The canonical virtual Algorithm path.
  kVirtual = 2,
};

[[nodiscard]] constexpr const char* to_string(ComputeDispatch d) {
  switch (d) {
    case ComputeDispatch::kAuto:
      return "auto";
    case ComputeDispatch::kKernel:
      return "kernel";
    case ComputeDispatch::kVirtual:
      return "virtual";
  }
  return "?";
}

struct EngineOptions {
  /// Record a full Trace (positions, dirs, edge sets per round).  Off by
  /// default: the engine's niche is long timing sweeps; flip it on when the
  /// run feeds trace-based analysis (towers, legality audits, rendering).
  bool record_trace = false;

  /// Enforce the paper's well-initiated execution requirements: strictly
  /// fewer robots than nodes and a towerless initial configuration.
  bool enforce_well_initiated = true;

  /// Compute dispatch path; kAuto picks the kernel whenever the algorithm
  /// has one.
  ComputeDispatch dispatch = ComputeDispatch::kAuto;

  /// Cycle detection + exact stat extrapolation for run().  Only engages on
  /// fully deterministic configurations (kernel dispatch, oblivious periodic
  /// edge schedule, non-Bernoulli activation, no trace); anything else
  /// silently runs the plain round loop.  Results are bit-identical either
  /// way.
  FastForwardOptions fast_forward;
};

/// Aggregates the engine maintains incrementally every round, so sweeps get
/// their metrics without recording a trace.  Visit semantics match
/// analyze_coverage(): configuration times 0..rounds, one visit per robot.
struct EngineStats {
  Time rounds = 0;
  std::uint64_t total_moves = 0;
  /// Configuration times (of rounds+1 many) at which some node held >= 2
  /// robots.
  Time tower_rounds = 0;
  /// Number of towered episodes: maximal runs of consecutive boundaries at
  /// which some tower existed (a transition from a towerless boundary to a
  /// towered one counts 1).  Coarser than analyze_towers'
  /// tower_formation_count, which tracks per-node / per-robot-set events —
  /// use a recorded trace when that granularity matters.
  std::uint64_t tower_formations = 0;
  std::uint32_t visited_node_count = 0;
  std::optional<Time> cover_time;
};

class Engine {
 public:
  /// FSYNC: every robot, every round, against a (possibly adaptive)
  /// FSYNC adversary.
  Engine(Ring ring, AlgorithmPtr algorithm, AdversaryPtr adversary,
         const std::vector<RobotPlacement>& placements,
         EngineOptions options = {});

  /// SSYNC: `activation` selects the L-C-M subset each round; the adversary
  /// sees the configuration and the activation mask.
  Engine(Ring ring, AlgorithmPtr algorithm,
         std::unique_ptr<SsyncAdversary> adversary,
         std::unique_ptr<ActivationPolicy> activation,
         const std::vector<RobotPlacement>& placements,
         EngineOptions options = {});

  /// ASYNC: `phases` advances per-robot Look/Compute/Move machines one
  /// phase per tick; the adversary sees the set of robots whose Move fires.
  Engine(Ring ring, AlgorithmPtr algorithm,
         std::unique_ptr<SsyncAdversary> adversary,
         std::unique_ptr<PhaseScheduler> phases,
         const std::vector<RobotPlacement>& placements,
         EngineOptions options = {});

  /// Execute one round (FSYNC/SSYNC) or one scheduler tick (ASYNC).
  void step();

  /// Execute `rounds` further rounds/ticks.
  void run(Time rounds);

  [[nodiscard]] ExecutionModel model() const { return model_; }
  /// True when Compute runs through the devirtualized kernel path.
  [[nodiscard]] bool kernel_dispatch() const { return kernel_.has_value(); }

  [[nodiscard]] Time now() const { return now_; }
  [[nodiscard]] const Ring& ring() const { return ring_; }
  [[nodiscard]] std::uint32_t robot_count() const {
    return static_cast<std::uint32_t>(node_.size());
  }

  [[nodiscard]] NodeId robot_node(RobotId r) const { return node_[r]; }
  [[nodiscard]] LocalDirection robot_dir(RobotId r) const {
    return static_cast<LocalDirection>(dir_[r]);
  }
  [[nodiscard]] Chirality robot_chirality(RobotId r) const {
    return Chirality(right_cw_[r] != 0);
  }
  /// Persistent algorithm memory of robot `r` — virtual dispatch only (the
  /// kernel path stores POD KernelState instead).
  [[nodiscard]] const AlgorithmState& robot_state(RobotId r) const;
  /// Pending phase of robot `r` — ASYNC only.
  [[nodiscard]] Phase phase_of(RobotId r) const;

  /// Robots currently on node `u` — O(1) from the occupancy histogram.
  [[nodiscard]] std::uint32_t robots_on(NodeId u) const { return occ_[u]; }

  /// Materialize the current configuration (the gamma at the start of the
  /// next round).  On-demand: costs O(k), the hot loop never calls it.
  [[nodiscard]] Configuration snapshot() const;

  /// Incrementally maintained aggregates (always available).
  [[nodiscard]] const EngineStats& stats() const { return stats_; }

  /// Fast-forward telemetry.  rounds_simulated() is the number of rounds
  /// actually executed (== stats().rounds unless a cycle was skipped);
  /// detected_period() is 0 when no cycle engaged.
  [[nodiscard]] bool fast_forwarded() const { return ff_skipped_ > 0; }
  [[nodiscard]] Time rounds_simulated() const {
    return stats_.rounds - ff_skipped_;
  }
  [[nodiscard]] Time detected_period() const { return ff_detected_period_; }
  /// Hash hits rejected by the exact state comparison (collision audit).
  [[nodiscard]] std::uint64_t ff_collisions() const { return ff_collisions_; }

  /// Coverage report equivalent to analyze_coverage(trace) but computed from
  /// the incremental per-node bookkeeping — available without a trace.
  [[nodiscard]] CoverageReport coverage_report(Time suffix_window = 0) const;

  /// Only valid when options.record_trace was set.
  [[nodiscard]] const Trace& trace() const { return *trace_; }
  [[nodiscard]] bool recording_trace() const { return trace_ != nullptr; }

  /// The FSYNC adversary — FSYNC model only.
  [[nodiscard]] Adversary& adversary();

 private:
  void init(const std::vector<RobotPlacement>& placements);
  void observe_boundary(Time t);  // visit/tower bookkeeping at config time t
  /// Resolve fast-forward eligibility: fills ff_env_period_/ff_env_start_
  /// and returns true iff every component of the run is provably
  /// deterministic and periodic (see EngineOptions::fast_forward).
  [[nodiscard]] bool ff_eligible();
  /// Pack the full deterministic state (robot SoA + kernel memory + ASYNC
  /// phase machines) into 64-bit words for hashing and exact comparison.
  void pack_state(std::vector<std::uint64_t>& out) const;
  /// run() with cycle detection: detect, measure one live period,
  /// extrapolate all stats over the skipped repetitions, replay the tail.
  void run_fast_forward(Time target);
  /// The step_* entry points dispatch ONCE per round on the kernel id, and
  /// ONLY the fused Look+Compute loop is instantiated per kernel: under
  /// kernel dispatch the algorithm's compute inlines into that loop body (no
  /// per-robot branch or indirect call); under virtual dispatch ComputeFn
  /// wraps the canonical Algorithm::compute call.  Everything else — mask
  /// compaction, Move, trace records, the gamma mirror — is shared
  /// non-templated code, so each kernel instantiation stays a few cache
  /// lines instead of a whole round loop (the fix for the SSYNC/ASYNC
  /// kernel-dispatch regression: per-robot mask branches and trace
  /// bookkeeping no longer live inside the per-kernel loop).
  void step_fsync();
  void step_ssync();
  void step_async();
  /// Fused Look+Compute over every robot (FSYNC).
  template <typename ComputeFn>
  void look_compute_all(const ComputeFn& compute_fn);
  /// Fused Look+Compute over a compacted index list (SSYNC activated set).
  template <typename ComputeFn>
  void look_compute_list(const ComputeFn& compute_fn,
                         const std::vector<std::uint32_t>& idx);
  /// Compute over pending Look views for a compacted index list (ASYNC
  /// Compute phases); advances each robot's phase machine to Move.
  template <typename ComputeFn>
  void compute_pending_list(const ComputeFn& compute_fn,
                            const std::vector<std::uint32_t>& idx);

  /// Robot `i`'s chirality-resolved geometry at its current node/dir: the
  /// single source of the ahead/behind edge mapping every Look and Move
  /// block shares (ahead == the pointed edge).
  struct RobotFrame {
    NodeId node;
    bool ahead_cw;
    EdgeId ahead;
    EdgeId behind;
  };
  [[nodiscard]] RobotFrame frame_of(RobotId i) const;
  /// The Look-phase snapshot of robot `i` against the current E_t and
  /// occupancy.
  [[nodiscard]] View look(const RobotFrame& frame) const;
  /// Apply the Move phase for robot `i`: cross `pointed` if present,
  /// keeping occupancy, stats and the gamma mirror consistent.  Returns
  /// whether the robot moved.
  bool apply_move(RobotId i, bool ahead_cw, EdgeId pointed);

  Ring ring_;
  AlgorithmPtr algorithm_;
  ExecutionModel model_ = ExecutionModel::kFsync;
  EngineOptions options_;
  Time now_ = 0;

  // FSYNC adversary (model == kFsync).
  AdversaryPtr adversary_;
  // SSYNC/ASYNC adversary and schedulers.
  std::unique_ptr<SsyncAdversary> ssync_adversary_;
  std::unique_ptr<ActivationPolicy> activation_;
  std::unique_ptr<PhaseScheduler> phase_scheduler_;

  // Struct-of-arrays robot state.
  std::vector<NodeId> node_;
  std::vector<std::uint8_t> dir_;       // LocalDirection
  std::vector<std::uint8_t> right_cw_;  // Chirality::right_is_clockwise
  // Algorithm memory: exactly one of the two is populated.
  std::vector<std::unique_ptr<AlgorithmState>> states_;  // virtual dispatch
  std::optional<KernelSpec> kernel_;                     // kernel dispatch
  std::vector<KernelState> kstates_;

  // ASYNC phase machines + pending Look views.
  std::vector<Phase> phases_;
  std::vector<View> pending_views_;

  // Occupancy histogram + number of nodes currently holding >= 2 robots.
  std::vector<std::uint32_t> occ_;
  std::uint32_t multi_nodes_ = 0;
  bool prev_had_tower_ = false;

  // Reused per-round scratch.
  EdgeSet edges_;                    // E_t
  std::vector<std::uint8_t> moved_;  // per-robot moved flag (trace path)
  ActivationMask mask_;              // SSYNC activation / ASYNC advancing
  ActivationMask moving_;            // ASYNC: Move phases firing this tick
  // Compacted per-round index lists (built once per round from the masks so
  // the hot loops iterate dense indices instead of branching per robot).
  std::vector<std::uint32_t> active_list_;   // SSYNC: activated robots
  std::vector<std::uint32_t> look_list_;     // ASYNC: Look phases firing
  std::vector<std::uint32_t> compute_list_;  // ASYNC: Compute phases firing
  std::vector<std::uint32_t> move_list_;     // ASYNC: Move phases firing

  // Oblivious FSYNC fast path: when the adversary is an ObliviousAdversary
  // we call the schedule's in-place fill directly and never touch
  // gamma_mirror_.
  const EdgeSchedule* schedule_ = nullptr;
  // Persistent configuration mirror: FSYNC adaptive adversaries, and every
  // SSYNC/ASYNC run (policies and adversaries see gamma each round).
  std::unique_ptr<Configuration> gamma_mirror_;

  // Incremental coverage bookkeeping (analyze_coverage semantics).
  std::vector<std::uint64_t> visit_counts_;
  std::vector<Time> last_visit_;
  std::vector<std::uint8_t> visited_;
  Time max_closed_gap_ = 0;
  EngineStats stats_;

  // Fast-forward bookkeeping (see cycle.hpp).
  Time ff_env_period_ = 0;  // sampling lattice period (0 = ineligible)
  Time ff_env_start_ = 0;
  Time ff_detected_period_ = 0;
  Time ff_skipped_ = 0;  // rounds covered by extrapolation, not execution
  std::uint64_t ff_collisions_ = 0;

  std::unique_ptr<Trace> trace_;
};

}  // namespace pef
