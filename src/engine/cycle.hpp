// Cycle detection for deterministic executions, and the knobs that control
// exact-stat fast-forward.
//
// A run whose every component is deterministic and finite-state (robot
// poses + kernel memory, activation phase, edge-schedule phase) must enter
// a cycle; once one global state recurs, the whole execution repeats with
// that period forever.  The engines exploit this: they fingerprint the
// packed state at environment-aligned rounds with a cheap 64-bit hash
// (Brent's algorithm keeps exactly one anchor snapshot), verify every hash
// hit by exact state comparison — a collision is counted and skipped, never
// silently trusted — and then extrapolate all reported statistics over the
// remaining whole periods in closed form, replaying only the final partial
// period so the result is bit-identical to the full run.
//
// "Environment-aligned" means rounds t with t >= env_start and
// (t - env_start) % env_period == 0, where env_period is the lcm of the
// edge schedule's recurrence period (ScheduleRecurrence) and the activation
// policy's period (FSYNC and full activation: 1; round-robin: its cycle
// length).  Sampling on that lattice makes the environment a pure function
// of the sampled state, so state equality really implies a cycle.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace pef {

/// Engine-level fast-forward knobs.  `hash_mask` narrows the fingerprint —
/// production uses the full 64 bits; tests mask it down to force hash
/// collisions and exercise the exact-verify path.
struct FastForwardOptions {
  bool enabled = false;
  std::uint64_t hash_mask = ~std::uint64_t{0};
};

/// Environment periods above this are not worth detecting: the detector
/// would sample too sparsely to pay off within any realistic horizon.
inline constexpr Time kMaxEnvPeriod = Time{1} << 20;

/// FNV-1a over a stream of 64-bit words — cheap, stateless, good enough as
/// a first-pass filter (every hit is exact-verified anyway).
struct StateHash {
  std::uint64_t value = 0xcbf29ce484222325ULL;
  void add(std::uint64_t word) {
    value ^= word;
    value *= 0x100000001b3ULL;
  }
};

/// Brent's cycle finder over an externally packed state stream, holding one
/// anchor snapshot.  Feed it environment-aligned samples in order; it
/// reports the cycle length (in samples) as soon as the current sample
/// exactly equals the anchor.
class BrentDetector {
 public:
  explicit BrentDetector(std::uint64_t hash_mask = ~std::uint64_t{0})
      : hash_mask_(hash_mask) {}

  /// Observe the next sample.  Returns the cycle length in SAMPLES (> 0)
  /// when `packed` exactly matches the anchor snapshot; 0 otherwise.
  Time observe(const std::vector<std::uint64_t>& packed,
               std::uint64_t hash) {
    hash &= hash_mask_;
    if (!have_anchor_) {
      set_anchor(packed, hash);
      return 0;
    }
    ++lam_;
    if (hash == anchor_hash_) {
      if (packed == anchor_) return lam_;
      ++collisions_;
    }
    if (lam_ == power_) {
      // Re-anchor at powers of two: guarantees detection once the anchor
      // lands inside the cycle, with O(1) snapshots alive at a time.
      power_ *= 2;
      lam_ = 0;
      set_anchor(packed, hash);
    }
    return 0;
  }

  /// Hash hits whose exact comparison failed (forced in tests by masking).
  [[nodiscard]] std::uint64_t collisions() const { return collisions_; }

 private:
  void set_anchor(const std::vector<std::uint64_t>& packed,
                  std::uint64_t hash) {
    anchor_ = packed;
    anchor_hash_ = hash;
    have_anchor_ = true;
  }

  std::uint64_t hash_mask_;
  bool have_anchor_ = false;
  Time lam_ = 0;
  Time power_ = 1;
  std::uint64_t anchor_hash_ = 0;
  std::vector<std::uint64_t> anchor_;
  std::uint64_t collisions_ = 0;
};

}  // namespace pef
