// BatchEngine — the replica-batched Monte-Carlo execution core.
//
// A sweep cell, a figure bench and a seed battery all run the SAME scenario
// (ring, algorithm, execution model, horizon) B times with different seeds
// or adversary draws.  Running those as B independent Engines wastes the
// structure: every replica re-pays the round-loop fixed costs (kernel
// dispatch, adversary virtual calls, loop setup) and the per-replica state
// is touched in B separate passes with cold caches between seeds.
//
// BatchEngine advances all B replicas in lock-step — one call to step()
// runs one round of every unfinished replica — with the robot state laid
// out struct-of-arrays ACROSS replicas:
//
//     node_[robot * B + replica]          (u32 plane)
//     dir_ / right_cw_ / mult_[robot * B + replica]  (byte planes)
//     krng_ / kcounter_ / khas_moved_[robot * B + replica]
//                                         (kernel memory, one plane per
//                                          KernelState field)
//     visits_[replica * n + node]         (count+last-visit cells)
//
// so the round loops iterate robot-major with a replica-stride inner loop:
// B independent replicas' worth of identical, branch-light work the
// compiler can vectorize and the core can overlap (no serial dependence
// between replicas).  The Compute phase is the enum-dispatched kernel path
// of robot/kernel.hpp — the KernelId is lifted to a template parameter
// ONCE per round, so each kernel's Look+Compute body inlines straight into
// the replica loop: this is the SIMD hook the per-kernel loop
// instantiation was built for.
//
// The key deviation from Engine's round core: BatchEngine keeps NO
// occupancy histogram.  The only things occupancy feeds are the Look
// phase's multiplicity bit and the tower stats, and both reduce to the
// per-robot predicate "does some other robot share my node" — which one
// counting pass over the node planes recomputes per boundary as a byte
// plane (mult_): k^2 replica-wide vector compares with no gathers or
// scatters.  With the multiplicity plane and E_t frozen for the round,
// Look, Compute and Move fuse into ONE replica-stride pass (no robot's
// action changes another's inputs), followed by a visit-bookkeeping pass
// over 8-byte per-(replica, node) cells.
//
// The per-round ROUND PROLOGUE (who acts, which edges exist) is batched
// too — SSYNC and ASYNC are first-class citizens of the planes, not a
// scalar per-replica preamble:
//
//   * edge words live in ONE contiguous plane, one row per replica.
//     Replicas whose adversary is per-replica-independent (an oblivious
//     schedule — every `batchable` registry kind) fill their row in place
//     via EdgeSchedule::edges_into_words, with no EdgeSet and no
//     Configuration mirror; time-invariant schedules fill once at
//     construction and never refill, and a round whose live rows are all
//     full runs the FSYNC AllFull instantiation with no edge tests at all.
//   * SSYNC activation masks and ASYNC advance/move masks are robot-major
//     uint64 WORD planes (bit = replica).  The common policies — full,
//     Bernoulli-p, round-robin — are devirtualized (ActivationBatchKind,
//     enum-dispatched like KernelId): one pass fills every replica's mask
//     words from a per-replica RNG plane seeded with the policy's own
//     stream, bit-identical to the virtual calls it replaces.  The SSYNC /
//     ASYNC passes then iterate mask words (ctz over set bits) instead of
//     testing every (robot, replica) byte.
//   * Configuration mirrors are materialized LAZILY: only replicas whose
//     adversary or activation policy actually sees gamma (adaptive
//     lower-bound families, exotic virtual policies) carry one; everything
//     else skips the per-round mirror refresh entirely.
//   * replicas that reach their horizon are compacted out (their lane is
//     swapped with the last live lane), so the inner loops always run over
//     a dense prefix of live replicas and a ragged batch never idles.
//
// Results are BIT-IDENTICAL to B independent Engine runs: per-replica
// adversaries / activation policies / phase schedulers consume the same
// streams in the same order as a solo run (batched Bernoulli kernels replay
// the policy's RNG stream draw-for-draw), and tests/batch_engine_test.cpp
// pins traces and stats to Engine across every registry kernel x {FSYNC,
// SSYNC, ASYNC} x batchable and non-batchable adversaries x seeds,
// including ragged horizons.
#pragma once

#include <memory>
#include <vector>

#include "adversary/adversary.hpp"
#include "analysis/coverage.hpp"
#include "common/types.hpp"
#include "engine/engine.hpp"
#include "engine/topology.hpp"
#include "robot/algorithm.hpp"
#include "robot/kernel.hpp"
#include "robot/robot.hpp"
#include "scheduler/async.hpp"
#include "scheduler/ssync.hpp"
#include "scheduler/trace.hpp"

namespace pef {

/// One replica of the batch: the same scenario shape as one Engine run.
/// Every replica must share the ring, the robot count and the algorithm's
/// KernelId; seeds, placements, adversary draws and horizons may differ.
struct BatchReplica {
  /// Must provide a kernel (Algorithm::kernel()); every registry algorithm
  /// does.  The KernelSpec may differ per replica (per-seed random-walk
  /// streams), the KernelId may not.
  AlgorithmPtr algorithm;

  /// FSYNC: the per-replica edge adversary.
  AdversaryPtr adversary;
  /// SSYNC / ASYNC: the per-replica edge adversary (sees the activation /
  /// moving mask).
  std::unique_ptr<SsyncAdversary> ssync_adversary;
  /// SSYNC: selects the L-C-M subset each round.
  std::unique_ptr<ActivationPolicy> activation;
  /// ASYNC: advances the per-robot phase machines each tick.
  std::unique_ptr<PhaseScheduler> phases;

  std::vector<RobotPlacement> placements;

  /// Rounds (FSYNC/SSYNC) or ticks (ASYNC) this replica runs before it is
  /// compacted out of the batch.  Horizons may differ across replicas.
  Time horizon = 0;
};

/// Wire `replica`'s model-specific pieces the way every FSYNC-battery
/// entry point does it (SweepRunner, run_battery, pef_run --batch): FSYNC
/// takes the adversary directly; SSYNC/ASYNC adapt it through
/// SsyncFromFsyncAdversary and attach the standard seeded Bernoulli
/// activation / phase scheduler, so batched and solo runs of the same
/// (model, seed) see identical streams.
void wire_standard_replica(BatchReplica& replica, ExecutionModel model,
                           AdversaryPtr adversary, double activation_p,
                           std::uint64_t seed);

struct BatchEngineOptions {
  /// Record a full per-replica Trace (see Engine's option of the same
  /// name).  Off by default — tracing is the differential-test path, the
  /// batch's niche is untraced Monte-Carlo throughput.
  bool record_trace = false;

  /// Enforce the paper's well-initiated execution requirements per replica.
  bool enforce_well_initiated = true;

  /// Intra-cell worker threads: the replica axis is split into 64-lane
  /// blocks and the hot phases (fused pass, multiplicity recompute, visit
  /// bookkeeping) run block ranges on a pinned WorkerTeam.  Every parallel
  /// section writes only lane-indexed state and block-local move-log
  /// regions are drained in block order, so results (stats, traces,
  /// coverage) are bit-identical to threads == 1 at any thread count.
  /// 0 = one thread per physical core; 1 (default) = serial.
  std::uint32_t threads = 1;

  /// Per-lane cycle detection + exact stat extrapolation (see cycle.hpp
  /// and Engine's option of the same name).  A lane that proves a cycle
  /// has its horizon shrunk to the final partial period and retires into
  /// the existing ragged-horizon compaction; ineligible lanes (Bernoulli
  /// activation, adaptive adversaries, tracing) run to their full horizon.
  /// Per-replica results are bit-identical either way.
  FastForwardOptions fast_forward;
};

// ---------------------------------------------------------------------------
// Adaptive batch sizing
//
// The batch only wins once enough replicas amortize its round overheads
// (mask/multiplicity plane passes, the wider working set); below that the
// solo Engine's occupancy histogram is strictly cheaper.  The break-even
// point and the preferred width were calibrated from BENCH_scaling's
// batch_throughput series per activation model and n/k regime; callers
// (SweepRunner, pef_run --batch auto) route through plan_batch so the
// B=1..small regime never regresses against solo Engines.

/// The smallest replica count at which a BatchEngine beats `B` solo Engine
/// runs of the same scenario (>= 2 always: one replica is never batched).
[[nodiscard]] std::uint32_t batch_break_even(ExecutionModel model,
                                             std::uint32_t n, std::uint32_t k);

/// The calibrated sweet-spot batch width for one scenario: wide enough to
/// saturate the replica-stride SIMD passes, capped where the lane-major
/// visit/occupancy rows would outgrow the cache budget (large n narrows
/// the batch).
[[nodiscard]] std::uint32_t preferred_batch_width(ExecutionModel model,
                                                  std::uint32_t n,
                                                  std::uint32_t k);

/// How to run `seeds` same-scenario replicas.  width == 1 means "run solo
/// Engines"; width > 1 means "BatchEngine in chunks of width".
/// `max_batch` caps the width; 0 means adaptive (preferred width).  A cap
/// below break-even routes to solo Engines — the cap is a ceiling, not a
/// demand to batch at a losing width.
struct BatchPlan {
  std::uint32_t width = 1;
  [[nodiscard]] bool use_batch() const { return width > 1; }
};
[[nodiscard]] BatchPlan plan_batch(ExecutionModel model, std::uint32_t n,
                                   std::uint32_t k, std::uint64_t seeds,
                                   std::uint32_t max_batch);

class BatchEngine {
 public:
  BatchEngine(Ring ring, ExecutionModel model,
              std::vector<BatchReplica> replicas,
              BatchEngineOptions options = {});

  /// One lock-step round (FSYNC/SSYNC) or tick (ASYNC) of every unfinished
  /// replica, then compaction of replicas that reached their horizon.
  void step();

  /// Run until every replica reaches its horizon.
  void run_all();

  [[nodiscard]] ExecutionModel model() const { return model_; }
  [[nodiscard]] const Ring& ring() const { return ring_; }
  [[nodiscard]] std::uint32_t replica_count() const { return batch_; }
  /// Replicas that have not yet reached their horizon.
  [[nodiscard]] std::uint32_t active_replicas() const { return active_; }
  [[nodiscard]] std::uint32_t robot_count() const { return robots_; }
  /// Rounds/ticks advanced so far (== every live replica's local time).
  [[nodiscard]] Time now() const { return now_; }

  // Per-replica results, indexed by construction order (stable across
  // internal lane compaction).
  [[nodiscard]] const EngineStats& stats(std::uint32_t replica) const;
  [[nodiscard]] CoverageReport coverage_report(std::uint32_t replica,
                                               Time suffix_window = 0) const;
  /// Fast-forward telemetry, per replica (see Engine::fast_forwarded).
  [[nodiscard]] bool fast_forwarded(std::uint32_t replica) const;
  [[nodiscard]] Time rounds_simulated(std::uint32_t replica) const;
  [[nodiscard]] Time detected_period(std::uint32_t replica) const;
  [[nodiscard]] NodeId robot_node(std::uint32_t replica, RobotId r) const;
  [[nodiscard]] Configuration snapshot(std::uint32_t replica) const;
  /// Only valid when options.record_trace was set.
  [[nodiscard]] const Trace& trace(std::uint32_t replica) const;

 private:
  void init_replica(std::uint32_t lane, BatchReplica& replica);
  /// The TRACED step paths: global per-round barriers so the trace
  /// recorder can read every lane's planes between the prologue and the
  /// pass.  Untraced rounds go through the *_round functions below, which
  /// are entirely lane-range-local and therefore tileable and threadable.
  void step_fsync();
  void step_ssync();
  void step_async();
  /// ONE untraced round of lanes [l0, l1) at time t — edge refill, pass,
  /// boundary bookkeeping (multiplicity/occupancy, visits, mirrors, round
  /// stats), touching no state outside the lane range.  This is the unit
  /// the tiled run_all and the threaded slices both compose.
  template <KernelId Id>
  void fsync_round(std::uint32_t l0, std::uint32_t l1, Time t);
  template <KernelId Id>
  void ssync_round(std::uint32_t l0, std::uint32_t l1, Time t);
  template <KernelId Id>
  void async_round(std::uint32_t l0, std::uint32_t l1, Time t);
  /// Split the live lanes [0, active_) into slices of whole 64-lane blocks
  /// (one slice per team slot) and run fn(l0, l1) on each — on the worker
  /// team when options_.threads > 1, inline otherwise.  64-lane
  /// granularity keeps every plane write word- and cache-line-disjoint
  /// across slices (mask words hold 64 lane bits; 64 byte-plane lanes are
  /// one cache line), so fn needs no synchronization.
  template <typename Fn>
  void parallel_lane_slices(Fn&& fn);
  /// The per-kernel FSYNC pass over lanes [l0, l1): one fused
  /// Look+Compute+Move sweep with a replica-stride inner loop.  AllFull
  /// elides every edge-presence test (every live replica's E_t is the full
  /// set, so every robot moves).
  template <KernelId Id, bool AllFull>
  void fsync_pass(std::uint32_t l0, std::uint32_t l1);
  /// SSYNC/ASYNC passes over [l0, l1); both log their moves into the
  /// range's own move_log_ region and return the log's end index for
  /// apply_move_log.
  template <KernelId Id>
  [[nodiscard]] std::size_t ssync_pass(std::uint32_t l0, std::uint32_t l1);
  template <KernelId Id>
  [[nodiscard]] std::size_t async_pass(std::uint32_t l0, std::uint32_t l1);
  /// E_t for lanes [l0, l1) at time t: schedule-backed lanes refill their
  /// edge row in place, mirror-path lanes go through the virtual adversary
  /// (reading only their own lane's mask columns / gamma mirror).
  void refill_edges(std::uint32_t l0, std::uint32_t l1, Time t);
  /// Replay move_log_[begin, end) onto occ_ / multi_nodes_.
  void apply_move_log(std::size_t begin, std::size_t end);

  /// Lane `lane`'s row of the contiguous edge-word plane.
  [[nodiscard]] std::uint64_t* edge_row(std::uint32_t lane) {
    return edge_plane_.data() + std::size_t{lane} * edge_words_per_row_;
  }
  [[nodiscard]] const std::uint64_t* edge_row(std::uint32_t lane) const {
    return edge_plane_.data() + std::size_t{lane} * edge_words_per_row_;
  }

  /// The batched activation prologue shared by SSYNC (activation policies)
  /// and ASYNC (phase schedulers): clear the mask word plane, then fill
  /// the bits of lanes [l0, l1) (a whole-word range) — devirtualized
  /// kernels (full / round-robin / Bernoulli over the act_rng_ plane)
  /// inline per lane; kVirtual lanes call the policy into a scratch byte
  /// mask and transpose.
  void fill_mask_words(std::uint32_t l0, std::uint32_t l1, Time t);
  /// ASYNC: moving = advancing AND (phase == Move), word columns [l0, l1).
  void fill_moving_words(std::uint32_t l0, std::uint32_t l1);
  /// Lane `lane`'s column of a mask word plane as a 0/1 byte mask (the
  /// virtual-adversary path still speaks ActivationMask).
  void extract_lane_mask(const std::uint64_t* plane, std::uint32_t lane,
                         ActivationMask& out) const;
  [[nodiscard]] bool mask_bit(const std::uint64_t* plane, std::uint32_t robot,
                              std::uint32_t lane) const {
    return (plane[std::size_t{robot} * lane_words_ + (lane >> 6)] >>
            (lane & 63)) &
           1ULL;
  }

  /// Recompute the multiplicity byte plane and per-lane tower flags of
  /// lanes [l0, l1) from the node planes (replica-wide compares, or the
  /// stamp path for small batches / large robot counts; no occupancy
  /// histogram exists to maintain).  `boundary_t` is the configuration
  /// time: the stamp path derives its row epoch from it (strictly
  /// increasing per lane, so no shared counter and no cross-slice state).
  void recompute_multiplicity(std::uint32_t l0, std::uint32_t l1,
                              Time boundary_t);
  void recompute_multiplicity_stamped(std::uint32_t l0, std::uint32_t l1,
                                      Time boundary_t);
  /// Visit/cover bookkeeping for every robot of lanes [l0, l1) at config
  /// time `t` (the batched equivalent of Engine::observe_boundary, minus
  /// the tower flags which recompute_multiplicity owns).
  void observe_boundary(Time t, std::uint32_t l0, std::uint32_t l1);
  /// Refresh the gamma mirrors of lanes [l0, l1) from the planes (dirs +
  /// positions).  Mirrors are lazy: only lanes whose adversary / policy
  /// sees gamma carry one, everything else is skipped.
  void update_mirrors(std::uint32_t l0, std::uint32_t l1);
  /// Per-lane end-of-round bookkeeping for lanes [l0, l1) at round-end
  /// time t1: tower stats, round counters.
  void finish_round(std::uint32_t l0, std::uint32_t l1, Time t1);
  /// Resolve per-lane fast-forward eligibility (called once at
  /// construction; mirrors Engine::ff_eligible per lane).
  void ff_init();
  /// Per-lane cycle detection at boundary t for lanes [l0, l1): advance
  /// each lane's detection state machine (search -> measure -> armed).
  /// Lane-local state only, so it composes with tiles and worker slices.
  void ff_observe(std::uint32_t l0, std::uint32_t l1, Time t);
  /// Pack lane state for fingerprinting (the batch twin of
  /// Engine::pack_state).
  void ff_pack_lane(std::uint32_t lane, std::vector<std::uint64_t>& out) const;
  /// At an epoch boundary (under retire_finished, so no epoch span is in
  /// flight): extrapolate every armed lane's stats over the whole periods
  /// left before its horizon and shrink the horizon to the final partial
  /// period.  Visit `last` stamps stay in the lane's local (un-skipped)
  /// clock until retirement so the replay keeps exact gap bookkeeping.
  void ff_apply_armed();
  /// At retirement of a fast-forwarded lane: shift rounds and the
  /// in-cycle visit stamps by the skipped span, landing on the stats of
  /// the full-horizon run.
  void ff_finalize_lane(std::uint32_t lane);
  /// Swap finished lanes out of the live prefix.
  void retire_finished();
  void swap_lanes(std::uint32_t a, std::uint32_t b);
  [[nodiscard]] Configuration snapshot_lane(std::uint32_t lane) const;

  // Trace reconstruction (cold path): records are rebuilt from the planes
  // around the hot passes, so tracing costs nothing when off.
  void begin_trace_round();
  void end_trace_round();

  Ring ring_;
  ExecutionModel model_ = ExecutionModel::kFsync;
  BatchEngineOptions options_;
  KernelId kernel_id_ = KernelId::kKeepDirection;
  std::uint32_t batch_ = 0;   // B: replica count == lane capacity
  std::uint32_t active_ = 0;  // live lanes are 0..active_-1
  std::uint32_t robots_ = 0;  // k
  std::uint32_t nodes_ = 0;   // n
  std::uint32_t edge_count_ = 0;
  Time now_ = 0;

  // Lane <-> replica maps (compaction permutes lanes, never replica ids).
  std::vector<std::uint32_t> replica_of_lane_;
  std::vector<std::uint32_t> lane_of_replica_;

  // Per-lane scenario objects.
  std::vector<AlgorithmPtr> algorithms_;
  std::vector<KernelSpec> specs_;
  std::vector<AdversaryPtr> adversaries_;                    // FSYNC
  std::vector<std::unique_ptr<SsyncAdversary>> ssync_advs_;  // SSYNC/ASYNC
  std::vector<std::unique_ptr<ActivationPolicy>> activations_;
  std::vector<std::unique_ptr<PhaseScheduler>> phase_schedulers_;
  /// Non-null iff the lane's edge sets are a pure function of time (FSYNC
  /// oblivious adversary, or an SSYNC/ASYNC adversary exposing
  /// oblivious_schedule()): the lane's plane row is filled straight from
  /// the schedule, no EdgeSet, no mirror.
  std::vector<const EdgeSchedule*> schedules_;
  /// Lazy gamma mirrors: null for lanes nothing looks at.
  std::vector<std::unique_ptr<Configuration>> mirrors_;
  std::vector<Time> horizons_;

  // Intra-cell threading (options_.threads resolved against HwTopology at
  // construction): the team exists only when threads_ > 1 AND the batch is
  // wide enough to slice (>= 2 blocks of 64 lanes).
  std::uint32_t threads_ = 1;
  std::unique_ptr<WorkerTeam> team_;
  /// Replica-block tile width (a multiple of 64 lanes, chosen at
  /// construction so one tile's lane-major rows — visits, occupancy,
  /// stamps — stay L2-resident).  The tiled run_all runs each tile through
  /// a whole epoch of rounds before moving to the next tile; lanes are
  /// fully independent simulations, so any round interleaving across lanes
  /// computes bit-identical per-lane results.
  std::uint32_t tile_lanes_ = 64;

  // Robot state planes, stride batch_ (robot-major, replica-minor), in
  // PlaneVectors: 64-byte-aligned rows for the SIMD passes, and the
  // multi-MB lane-major planes (visits_, occ_, stamps) get 2 MiB-aligned
  // MADV_HUGEPAGE regions — at B=256 those rows are walked by scattered
  // per-robot accesses and 4 KiB pages thrash the TLB (see topology.hpp).
  PlaneVector<NodeId> node_;
  PlaneVector<std::uint8_t> dir_;
  PlaneVector<std::uint8_t> right_cw_;
  PlaneVector<std::uint8_t> mult_;     // boundary multiplicity bits (0/1)
  // Kernel memory as per-FIELD planes (the batched form of KernelState):
  // keeping each field contiguous along the replica axis lets the fused
  // pass vectorize stateful kernels — pef3+'s has_moved flag is a byte
  // plane here instead of one byte strided across 48-byte structs.  The
  // rng plane is allocated only for random-walk batches (one dummy slot
  // otherwise).
  PlaneVector<Xoshiro256> krng_;
  PlaneVector<std::uint64_t> kcounter_;
  PlaneVector<std::uint8_t> khas_moved_;
  PlaneVector<View> pending_views_;    // ASYNC: Look snapshots

  /// Visit bookkeeping of one (lane, node): one cache access per robot per
  /// boundary.  `last` is only meaningful when `count > 0`; 32 bits suffice
  /// because batch horizons are checked against 2^32 at construction.
  struct VisitCell {
    std::uint32_t count = 0;
    std::uint32_t last = 0;
  };
  // Per-(lane, node) cells, lane-major rows of length nodes_.
  PlaneVector<VisitCell> visits_;

  // The edge-word plane: E_t of lane l is the row of edge_words_per_row_
  // words at l * edge_words_per_row_ (EdgeSet::words() bit layout).
  // Schedule-backed lanes are filled in place by edges_into_words;
  // mirror-path lanes fill their per-lane EdgeSet scratch (edges_) through
  // the virtual adversary and copy the words over (a few words per round,
  // dwarfed by the adversary itself).
  std::uint32_t edge_words_per_row_ = 0;
  PlaneVector<std::uint64_t> edge_plane_;
  std::vector<EdgeSet> edges_;            // mirror-path scratch only
  std::vector<std::uint8_t> refill_;      // 0 = time-invariant, filled once
  std::vector<std::uint8_t> edges_full_;  // E_t is the full set
  std::vector<std::uint64_t> moves_;      // per-lane move counter (hot)
  std::vector<std::uint8_t> tower_flag_;  // some node holds >= 2 robots
  std::vector<std::uint8_t> prev_had_tower_;
  std::vector<Time> max_closed_gap_;
  std::vector<EngineStats> stats_;

  // SSYNC activation / ASYNC advance masks as robot-major WORD planes:
  // bit l of word (robot * lane_words_ + l / 64) = "robot acts in lane l".
  // Regenerated every round before use (never swapped on compaction).
  std::uint32_t lane_words_ = 0;
  PlaneVector<std::uint64_t> mask_words_;
  /// ASYNC: advancing AND in-Move-phase (mask_words_ & move_words_, one
  /// word AND per robot-word) — what the edge adversary and the Move pass
  /// see.  Snapshotted before the tick's phase transitions.
  PlaneVector<std::uint64_t> moving_words_;

  // The devirtualized activation state (SSYNC policies / ASYNC phase
  // schedulers share ActivationBatchKind): per-lane kind, Bernoulli p and
  // the per-replica RNG plane seeded from each policy's own stream.
  std::vector<std::uint8_t> act_kind_;
  std::vector<double> act_p_;
  std::vector<Xoshiro256> act_rng_;

  // ASYNC phase machines as ONE-HOT word planes (same geometry as
  // mask_words_): a robot's phase is which plane holds its lane bit.
  // Membership tests are word ANDs against the advancing mask and the
  // L->C->C->M->M->L transitions are word ops on the matched bits — no
  // per-robot phase bytes, no data-dependent branches in the tick pass.
  PlaneVector<std::uint64_t> look_words_;
  PlaneVector<std::uint64_t> compute_words_;
  PlaneVector<std::uint64_t> move_words_;

  // SSYNC/ASYNC: per-lane occupancy rows (lane-major, like visits_) and a
  // per-lane towered-node counter, updated incrementally from the moves —
  // when only the activated subset moves, sparse counter updates beat
  // FSYNC's full multiplicity recompute, and the tower flag is just
  // multi_nodes_[lane] != 0.  FSYNC keeps the recompute (every robot moves
  // every round, and the row compares vectorize).  The SSYNC pass stays
  // fused by logging its moves (Looks must read round-start occupancy)
  // and replaying the log after the pass.
  PlaneVector<std::uint32_t> occ_;          // [lane * nodes_ + node]
  std::vector<std::uint32_t> multi_nodes_;  // nodes holding >= 2 robots
  struct PendingMove {
    std::uint32_t lane;
    NodeId from;
    NodeId to;
  };
  // Per-round scratch, presized to robots_ * batch_ (the maximum moves of
  // one round); the passes append through a raw cursor — no capacity
  // checks or size bookkeeping in the hot loop.  Lane range [l0, l1) owns
  // the region at l0 * robots_ (capacity (l1-l0) * robots_ == its maximum
  // moves), so threaded passes log without contention; each pass returns
  // its cursor and the range replays its own region immediately (occ_ and
  // multi_nodes_ are lane-indexed, so the replay is range-local too).
  PlaneVector<PendingMove> move_log_;
  /// False once every live lane's edge row is filled for good (all
  /// schedule-backed, all time-invariant): the per-round edge prologue is
  /// skipped entirely.  Monotone under lane retirement.
  bool edge_refill_needed_ = true;

  // Multiplicity scratch.  The compare path accumulates per-robot node
  // occurrence counts in u32 rows (mult_scratch_); the stamp path — used
  // when the batch is too narrow or the robot count too large for O(k^2)
  // row compares to win — tags visited (lane, node) cells with an epoch
  // and counts occupants directly (stamp_epoch_ / stamp_count_, allocated
  // only when that path is selected at construction).
  bool stamped_mult_ = false;
  PlaneVector<std::uint32_t> stamp_epoch_;
  PlaneVector<std::uint32_t> stamp_count_;

  /// Per-lane fast-forward state machine.  kSearch lanes feed their Brent
  /// detector at env-aligned boundaries; a verified cycle moves the lane
  /// to kMeasure (one more live period closes every wrap-around revisit
  /// gap and yields exact per-period stat deltas, which are independent of
  /// where in the cycle the window starts); kArmed lanes apply at the next
  /// epoch boundary and retire after the remaining partial period.
  struct LaneFf {
    enum class Stage : std::uint8_t {
      kOff = 0,  // ineligible: never sampled
      kSearch,   // Brent detector live on the env lattice
      kMeasure,  // cycle verified; measuring one live period of deltas
      kArmed,    // deltas ready; apply at the next epoch boundary
      kDone,     // applied or abandoned
    };
    Stage stage = Stage::kOff;
    Time env_period = 1;
    Time env_start = 0;
    BrentDetector detector;
    std::vector<std::uint64_t> packed;  // pack scratch, reused per sample
    Time period = 0;       // verified cycle length in rounds
    Time measure_end = 0;  // boundary at which the delta window closes
    // Stat snapshots at the measure window's start; `counts` holds the
    // per-node snapshot during kMeasure and the per-period DELTAS from
    // kArmed on (kept until retirement: delta > 0 marks in-cycle nodes
    // whose last-visit stamps must shift by the skipped span).
    std::uint64_t snap_moves = 0;
    Time snap_tower_rounds = 0;
    std::uint64_t snap_formations = 0;
    std::vector<std::uint32_t> counts;
    std::uint64_t delta_moves = 0;
    Time delta_tower_rounds = 0;
    std::uint64_t delta_formations = 0;
    // Applied extrapolation (meaningful when skipped > 0).
    Time skipped = 0;
  };
  bool ff_enabled_ = false;  // some lane is actually searching
  std::vector<LaneFf> ff_;

  // Per-REPLICA traces (tracing only).
  std::vector<std::unique_ptr<Trace>> traces_;
  std::vector<RoundRecord> record_scratch_;  // per lane, reused
};

}  // namespace pef
