#include "engine/sweep_runner.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <iterator>
#include <optional>
#include <thread>

#include "algorithms/registry.hpp"
#include "common/check.hpp"
#include "common/json.hpp"
#include "common/rng.hpp"
#include "engine/batch_engine.hpp"
#include "engine/topology.hpp"
#include "scheduler/simulator.hpp"

namespace pef {
namespace {

/// Flat description of one grid cell, precomputed so workers index into an
/// immutable task list.
struct CellTask {
  std::size_t algorithm_index = 0;
  std::size_t adversary_index = 0;
  std::size_t model_index = 0;
  std::uint32_t nodes = 0;
  std::uint32_t robots = 0;
  std::uint64_t seed = 0;
};

std::vector<CellTask> enumerate_cells(const SweepSpec& spec) {
  std::vector<CellTask> tasks;
  for (std::size_t a = 0; a < spec.algorithms.size(); ++a) {
    for (std::size_t d = 0; d < spec.adversaries.size(); ++d) {
      for (std::size_t m = 0; m < spec.models.size(); ++m) {
        for (const std::uint32_t n : spec.ring_sizes) {
          for (const std::uint32_t k : spec.robot_counts) {
            if (k == 0 || k >= n) continue;  // not well-initiated
            for (const std::uint64_t seed : spec.seeds) {
              tasks.push_back({a, d, m, n, k, seed});
            }
          }
        }
      }
    }
  }
  return tasks;
}

/// Pre-resolved per-spec context shared by every worker: display names and
/// kernel availability are pure functions of the spec, probed once.
struct SweepContext {
  const SweepSpec& spec;
  std::vector<std::string> adversary_names;
  std::vector<std::uint8_t> algorithm_has_kernel;
  /// Intra-cell worker threads handed to each BatchEngine (1 = serial; the
  /// sweep's own pool already covers the inter-cell axis, so this only
  /// helps sweeps whose grid is narrower than the machine).
  std::uint32_t engine_threads = 1;
};

SweepContext make_context(const SweepSpec& spec) {
  SweepContext context{spec, {}, {}, 1};
  context.adversary_names.reserve(spec.adversaries.size());
  for (const AdversaryConfig& config : spec.adversaries) {
    context.adversary_names.push_back(adversary_display_name(config));
  }
  // Kernel availability is a property of the algorithm name; probe once
  // per spec entry instead of constructing an Algorithm per seed group.
  context.algorithm_has_kernel.resize(spec.algorithms.size(), 0);
  for (std::size_t a = 0; a < spec.algorithms.size(); ++a) {
    context.algorithm_has_kernel[a] =
        make_algorithm(spec.algorithms[a], 0)->kernel().has_value() ? 1 : 0;
  }
  return context;
}

void fill_coordinates(const SweepContext& context, const CellTask& task,
                      SweepCell& cell) {
  cell.algorithm = context.spec.algorithms[task.algorithm_index];
  cell.adversary = context.adversary_names[task.adversary_index];
  cell.model = context.spec.models[task.model_index];
  cell.nodes = task.nodes;
  cell.robots = task.robots;
  cell.seed = task.seed;
  cell.effective_seed =
      effective_seed(task.seed, task.algorithm_index, task.adversary_index,
                     task.nodes, task.robots, task.model_index);
  cell.horizon = context.spec.horizon_for(task.nodes);
}

void fill_metrics(const EngineStats& stats, const CoverageReport& coverage,
                  SweepCell& cell) {
  cell.perpetual = coverage.perpetual(cell.nodes);
  cell.covered = coverage.cover_time.has_value();
  cell.cover_time = coverage.cover_time.value_or(0);
  cell.max_revisit_gap = coverage.max_revisit_gap;
  cell.tower_rounds = stats.tower_rounds;
  cell.tower_formations = stats.tower_formations;
  cell.total_moves = stats.total_moves;
}

std::vector<RobotPlacement> placements_for(const SweepSpec& spec,
                                           const Ring& ring,
                                           std::uint32_t robots,
                                           std::uint64_t eff_seed) {
  return spec.random_placements
             ? random_placements(ring, robots, derive_seed(eff_seed, 0x91ace))
             : spread_placements(ring, robots);
}

SweepCell run_cell(const SweepContext& context, const CellTask& task) {
  const SweepSpec& spec = context.spec;
  SweepCell cell;
  fill_coordinates(context, task, cell);

  const Ring ring(task.nodes);
  const std::vector<RobotPlacement> placements =
      placements_for(spec, ring, task.robots, cell.effective_seed);

  AlgorithmPtr algorithm = make_algorithm(cell.algorithm, cell.effective_seed);
  AdversaryPtr adversary =
      adversary_from_config(spec.adversaries[task.adversary_index], ring,
                            cell.effective_seed, task.robots, spec.topology);

  EngineOptions options;
  options.fast_forward.enabled = spec.fast_forward;

  const auto start = std::chrono::steady_clock::now();
  std::optional<Engine> engine_slot;
  switch (cell.model) {
    case ExecutionModel::kFsync:
      engine_slot.emplace(ring, std::move(algorithm), std::move(adversary),
                          placements, options);
      break;
    case ExecutionModel::kSsync:
      engine_slot.emplace(
          ring, std::move(algorithm),
          std::make_unique<SsyncFromFsyncAdversary>(std::move(adversary)),
          standard_ssync_activation(spec.activation_p, cell.effective_seed),
          placements, options);
      break;
    case ExecutionModel::kAsync:
      engine_slot.emplace(
          ring, std::move(algorithm),
          std::make_unique<SsyncFromFsyncAdversary>(std::move(adversary)),
          standard_async_phases(spec.activation_p, cell.effective_seed),
          placements, options);
      break;
  }
  Engine& engine = *engine_slot;
  engine.run(cell.horizon);
  const auto stop = std::chrono::steady_clock::now();

  fill_metrics(engine.stats(), engine.coverage_report(), cell);
  if (engine.fast_forwarded()) {
    cell.rounds_covered = cell.horizon;
    cell.rounds_simulated = engine.rounds_simulated();
  }
  cell.wall_seconds =
      std::chrono::duration<double>(stop - start).count();
  return cell;
}

/// Run `count` consecutive same-scenario tasks (differing only in seed) as
/// one BatchEngine of per-seed replicas.  `cells` points at the group's
/// output slots.
void run_batched(const SweepContext& context, const CellTask* tasks,
                 std::uint32_t count, SweepCell* cells) {
  const SweepSpec& spec = context.spec;
  const Ring ring(tasks[0].nodes);
  const ExecutionModel model = spec.models[tasks[0].model_index];

  std::vector<BatchReplica> replicas(count);
  for (std::uint32_t b = 0; b < count; ++b) {
    SweepCell& cell = cells[b];
    fill_coordinates(context, tasks[b], cell);
    BatchReplica& replica = replicas[b];
    replica.algorithm = make_algorithm(cell.algorithm, cell.effective_seed);
    replica.placements =
        placements_for(spec, ring, cell.robots, cell.effective_seed);
    replica.horizon = cell.horizon;
    wire_standard_replica(
        replica, model,
        adversary_from_config(spec.adversaries[tasks[b].adversary_index],
                              ring, cell.effective_seed, cell.robots,
                              spec.topology),
        spec.activation_p, cell.effective_seed);
  }

  const auto start = std::chrono::steady_clock::now();
  BatchEngineOptions options;
  options.threads = context.engine_threads;
  options.fast_forward.enabled = spec.fast_forward;
  BatchEngine engine(ring, model, std::move(replicas), options);
  engine.run_all();
  const auto stop = std::chrono::steady_clock::now();
  const double wall =
      std::chrono::duration<double>(stop - start).count() / count;

  for (std::uint32_t b = 0; b < count; ++b) {
    fill_metrics(engine.stats(b), engine.coverage_report(b), cells[b]);
    cells[b].wall_seconds = wall;
    if (engine.fast_forwarded(b)) {
      cells[b].rounds_covered = cells[b].horizon;
      cells[b].rounds_simulated = engine.rounds_simulated(b);
    }
  }
}

/// A maximal run of tasks sharing every coordinate but the seed.
struct CellGroup {
  std::size_t first = 0;
  std::uint32_t count = 0;
};

/// Group the task subrange [begin, end).  Shard boundaries may split a seed
/// group across shards; that only affects batch composition, and per-cell
/// results are bit-identical at any batch size.
std::vector<CellGroup> group_cells(const std::vector<CellTask>& tasks,
                                   std::size_t begin, std::size_t end) {
  std::vector<CellGroup> groups;
  for (std::size_t i = begin; i < end;) {
    std::size_t j = i + 1;
    while (j < end &&
           tasks[j].algorithm_index == tasks[i].algorithm_index &&
           tasks[j].adversary_index == tasks[i].adversary_index &&
           tasks[j].model_index == tasks[i].model_index &&
           tasks[j].nodes == tasks[i].nodes &&
           tasks[j].robots == tasks[i].robots) {
      ++j;
    }
    groups.push_back({i, static_cast<std::uint32_t>(j - i)});
    i = j;
  }
  return groups;
}

void run_group(const SweepContext& context,
               const std::vector<CellTask>& tasks, const CellGroup& group,
               SweepCell* cells) {
  // Seed groups batch when the algorithm has a kernel (every registry
  // algorithm does; bespoke kernel-less algorithms fall back to per-cell
  // Engines).  Results are identical either way.
  const SweepSpec& spec = context.spec;
  const bool batchable =
      spec.batch_seeds && group.count > 1 &&
      context.algorithm_has_kernel[tasks[group.first].algorithm_index] != 0;
  if (!batchable) {
    for (std::uint32_t b = 0; b < group.count; ++b) {
      cells[b] = run_cell(context, tasks[group.first + b]);
    }
    return;
  }
  // The calibrated break-even model decides both whether to batch at all
  // and how wide: a narrow seed group (or an explicit max_batch below
  // break-even) routes back to solo Engines, which are strictly faster
  // there.  Either route yields byte-identical cells.
  const CellTask& head = tasks[group.first];
  const BatchPlan plan =
      plan_batch(spec.models[head.model_index], head.nodes, head.robots,
                 group.count, spec.max_batch);
  if (!plan.use_batch()) {
    for (std::uint32_t b = 0; b < group.count; ++b) {
      cells[b] = run_cell(context, tasks[group.first + b]);
    }
    return;
  }
  for (std::uint32_t off = 0; off < group.count; off += plan.width) {
    const std::uint32_t count = std::min(plan.width, group.count - off);
    run_batched(context, tasks.data() + group.first + off, count,
                cells + off);
  }
}

}  // namespace

std::uint64_t count_sweep_cells(const SweepSpec& spec) {
  std::uint64_t pairs = 0;
  for (const std::uint32_t n : spec.ring_sizes) {
    for (const std::uint32_t k : spec.robot_counts) {
      if (k != 0 && k < n) ++pairs;  // same skip rule as enumerate_cells
    }
  }
  return pairs * spec.algorithms.size() * spec.adversaries.size() *
         spec.models.size() * spec.seeds.size();
}

std::uint64_t effective_seed(std::uint64_t grid_seed,
                             std::size_t algorithm_index,
                             std::size_t adversary_index, std::uint32_t nodes,
                             std::uint32_t robots, std::size_t model_index) {
  // model_index 0 leaves the stream unchanged, so FSYNC-only grids (and
  // every pre-model-axis grid) keep their historical per-cell seeds.
  return derive_seed(grid_seed, algorithm_index,
                     (static_cast<std::uint64_t>(adversary_index) << 32) |
                         nodes,
                     (static_cast<std::uint64_t>(model_index) << 32) |
                         robots);
}

std::uint64_t SweepResult::total_rounds() const {
  std::uint64_t total = 0;
  for (const SweepCell& cell : cells) total += cell.horizon;
  return total;
}

void sweep_cell_to_json(JsonWriter& json, const SweepCell& cell) {
  json.begin_object();
  json.field("algorithm", cell.algorithm);
  json.field("adversary", cell.adversary);
  json.field("model", to_string(cell.model));
  json.field("n", cell.nodes);
  json.field("k", cell.robots);
  json.field("seed", cell.seed);
  json.field("effective_seed", cell.effective_seed);
  json.field("horizon", cell.horizon);
  json.field("perpetual", cell.perpetual);
  if (cell.covered) {
    json.field("cover_time", cell.cover_time);
  } else {
    json.null_field("cover_time");
  }
  json.field("max_revisit_gap", cell.max_revisit_gap);
  json.field("tower_rounds", cell.tower_rounds);
  json.field("tower_formations", cell.tower_formations);
  json.field("total_moves", cell.total_moves);
  // Present only when the cycle detector engaged: plain cells keep the
  // historical shape byte-for-byte.
  if (cell.rounds_simulated != 0) {
    json.field("rounds_covered", cell.rounds_covered);
    json.field("rounds_simulated", cell.rounds_simulated);
  }
  json.end_object();
}

std::optional<SweepCell> sweep_cell_from_json(const JsonValue& value,
                                              std::string* error) {
  const auto fail = [error](const std::string& message) {
    if (error != nullptr) *error = "sweep cell: " + message;
    return std::nullopt;
  };
  if (!value.is_object()) return fail("must be an object");
  SweepCell cell;
  // Every field sweep_cell_to_json writes is required exactly once; a
  // truncated or hand-edited cell must be an error, never a default.
  // The trailing fast-forward pair is optional (emitted only for engaged
  // cells) but still each-at-most-once and only together.
  const char* const kFields[] = {
      "algorithm", "adversary", "model", "n", "k", "seed", "effective_seed",
      "horizon", "perpetual", "cover_time", "max_revisit_gap",
      "tower_rounds", "tower_formations", "total_moves",
      "rounds_covered", "rounds_simulated"};
  constexpr std::size_t kFieldCount = std::size(kFields);
  constexpr std::size_t kRequiredCount = kFieldCount - 2;
  bool seen[kFieldCount] = {};
  const auto mark = [&seen, &kFields](const std::string& key) {
    for (std::size_t f = 0; f < kFieldCount; ++f) {
      if (key == kFields[f]) {
        const bool duplicate = seen[f];
        seen[f] = true;
        return !duplicate;
      }
    }
    return false;
  };
  for (const auto& [key, member] : value.members) {
    if (!mark(key)) {
      return fail("unexpected or duplicate key \"" + key + "\"");
    }
    if (key == "algorithm" && member.is_string()) {
      cell.algorithm = member.string_value;
    } else if (key == "adversary" && member.is_string()) {
      cell.adversary = member.string_value;
    } else if (key == "model" && member.is_string()) {
      const auto model = parse_execution_model(member.string_value);
      if (!model) {
        return fail("unknown model \"" + member.string_value + "\"");
      }
      cell.model = *model;
    } else if (key == "n" && member.is_uint) {
      cell.nodes = static_cast<std::uint32_t>(member.uint_value);
    } else if (key == "k" && member.is_uint) {
      cell.robots = static_cast<std::uint32_t>(member.uint_value);
    } else if (key == "seed" && member.is_uint) {
      cell.seed = member.uint_value;
    } else if (key == "effective_seed" && member.is_uint) {
      cell.effective_seed = member.uint_value;
    } else if (key == "horizon" && member.is_uint) {
      cell.horizon = member.uint_value;
    } else if (key == "perpetual" && member.is_bool()) {
      cell.perpetual = member.bool_value;
    } else if (key == "cover_time" &&
               (member.is_null() || member.is_uint)) {
      cell.covered = !member.is_null();
      cell.cover_time = member.is_null() ? 0 : member.uint_value;
    } else if (key == "max_revisit_gap" && member.is_uint) {
      cell.max_revisit_gap = member.uint_value;
    } else if (key == "tower_rounds" && member.is_uint) {
      cell.tower_rounds = member.uint_value;
    } else if (key == "tower_formations" && member.is_uint) {
      cell.tower_formations = member.uint_value;
    } else if (key == "total_moves" && member.is_uint) {
      cell.total_moves = member.uint_value;
    } else if (key == "rounds_covered" && member.is_uint) {
      cell.rounds_covered = member.uint_value;
    } else if (key == "rounds_simulated" && member.is_uint) {
      cell.rounds_simulated = member.uint_value;
    } else {
      return fail("mistyped value for key \"" + key + "\"");
    }
  }
  for (std::size_t f = 0; f < kRequiredCount; ++f) {
    if (!seen[f]) {
      return fail("missing field \"" + std::string(kFields[f]) +
                  "\" (is this a pef_sweep cell?)");
    }
  }
  if (seen[kRequiredCount] != seen[kRequiredCount + 1]) {
    return fail(
        "\"rounds_covered\" and \"rounds_simulated\" must appear together");
  }
  if (seen[kRequiredCount] && cell.rounds_simulated == 0) {
    return fail("\"rounds_simulated\" must be nonzero when present");
  }
  return cell;
}

namespace {

void cells_to_json(JsonWriter& json, const std::vector<SweepCell>& cells) {
  json.begin_array("cells");
  for (const SweepCell& cell : cells) sweep_cell_to_json(json, cell);
  json.end_array();
}

}  // namespace

std::string SweepResult::to_json() const {
  PEF_CHECK_MSG(first_cell == 0 && total_cells == cells.size(),
                "partial (sharded) result: write with to_shard_json() and "
                "stitch with merge_sweep_shards()");
  JsonWriter json;
  json.begin_object();
  json.field("cell_count", static_cast<std::uint64_t>(cells.size()));
  cells_to_json(json, cells);
  json.end_object();
  return json.str();
}

std::string SweepResult::to_shard_json() const {
  JsonWriter json;
  json.begin_object();
  json.field("spec", spec_json);
  json.field("shard_index", shard.index);
  json.field("shard_count", shard.count);
  json.field("first_cell", first_cell);
  json.field("total_cells", total_cells);
  json.field("cell_count", static_cast<std::uint64_t>(cells.size()));
  cells_to_json(json, cells);
  json.end_object();
  return json.str();
}

namespace {

/// One parsed + envelope-checked shard file, tagged with the name used in
/// error messages (the caller's file path when given).
struct ParsedShard {
  std::string name;
  std::string spec_json;
  std::uint32_t index = 0;
  std::uint32_t count = 0;
  std::uint64_t first_cell = 0;
  std::uint64_t total_cells = 0;
  std::vector<SweepCell> cells;
};

/// Parse every shard document and validate the partition is coherent:
/// consistent envelopes, no duplicate indices, no out-of-range indices,
/// every slice exactly where the partition formula puts it.  Missing
/// shards are NOT an error here — they land in `missing` (sorted) for the
/// caller to treat as fatal (strict merge) or degrade on (partial merge).
/// On success `shards` comes back sorted by shard index.
bool parse_shard_partition(const std::vector<std::string>& shard_jsons,
                           const std::vector<std::string>* shard_names,
                           std::vector<ParsedShard>& shards,
                           std::vector<std::uint32_t>& missing,
                           std::string* error) {
  const auto fail = [error](const std::string& message) {
    if (error != nullptr) *error = message;
    return false;
  };
  const auto name_of = [shard_names](std::size_t i) {
    return shard_names != nullptr && i < shard_names->size()
               ? (*shard_names)[i]
               : "shard file " + std::to_string(i);
  };

  for (std::size_t i = 0; i < shard_jsons.size(); ++i) {
    const std::string where = name_of(i);
    std::string parse_error;
    const auto document = parse_json(shard_jsons[i], &parse_error);
    if (!document) return fail(where + ": " + parse_error);
    ParsedShard shard;
    shard.name = where;
    const JsonValue* spec = document->find("spec");
    const JsonValue* index = document->find("shard_index");
    const JsonValue* count = document->find("shard_count");
    const JsonValue* first = document->find("first_cell");
    const JsonValue* total = document->find("total_cells");
    const JsonValue* cells = document->find("cells");
    if (spec == nullptr || !spec->is_string() || index == nullptr ||
        !index->is_uint || count == nullptr || !count->is_uint ||
        first == nullptr || !first->is_uint || total == nullptr ||
        !total->is_uint || cells == nullptr || !cells->is_array()) {
      return fail(where +
                  ": not a pef_sweep shard file (needs spec, shard_index, "
                  "shard_count, first_cell, total_cells, cells — full "
                  "outputs need no merging)");
    }
    shard.spec_json = spec->string_value;
    shard.index = static_cast<std::uint32_t>(index->uint_value);
    shard.count = static_cast<std::uint32_t>(count->uint_value);
    shard.first_cell = first->uint_value;
    shard.total_cells = total->uint_value;
    for (const JsonValue& item : cells->items) {
      auto cell = sweep_cell_from_json(item, &parse_error);
      if (!cell) return fail(where + ": " + parse_error);
      shard.cells.push_back(std::move(*cell));
    }
    shards.push_back(std::move(shard));
  }

  if (shards.empty()) return fail("no shard files given");
  const std::uint32_t expected_count = shards.front().count;
  const std::uint64_t expected_total = shards.front().total_cells;
  const std::string& expected_spec = shards.front().spec_json;
  if (expected_count == 0) {
    return fail(shards.front().name + ": shard_count 0 is not a partition");
  }

  // Envelope consistency and duplicates, with the offending FILES named —
  // "shard 3 is broken" is useless when five machines each produced a
  // shard3.json.
  std::vector<std::string> covered_by(expected_count);
  for (const ParsedShard& shard : shards) {
    if (shard.spec_json != expected_spec) {
      return fail(shard.name + ": belongs to a different sweep than " +
                  shards.front().name + " (embedded specs differ)");
    }
    if (shard.count != expected_count || shard.total_cells != expected_total) {
      return fail(shard.name + ": belongs to a different partition than " +
                  shards.front().name + " (" + std::to_string(shard.count) +
                  " shards / " + std::to_string(shard.total_cells) +
                  " cells vs " + std::to_string(expected_count) +
                  " shards / " + std::to_string(expected_total) + " cells)");
    }
    if (shard.index >= expected_count) {
      return fail(shard.name + ": shard index " +
                  std::to_string(shard.index) + " out of range for a " +
                  std::to_string(expected_count) + "-shard partition");
    }
    // The slice must sit exactly where run(spec, {index, count}) puts it;
    // anything else is a corrupted or hand-edited file.
    const std::uint64_t lo = expected_total * shard.index / expected_count;
    const std::uint64_t hi =
        expected_total * (shard.index + 1) / expected_count;
    if (shard.first_cell != lo || shard.cells.size() != hi - lo) {
      return fail(shard.name + ": shard " + std::to_string(shard.index) +
                  " should cover cells " + std::to_string(lo) + ".." +
                  std::to_string(hi) + " but holds " +
                  std::to_string(shard.cells.size()) + " cells from " +
                  std::to_string(shard.first_cell));
    }
    std::string& owner = covered_by[shard.index];
    if (!owner.empty()) {
      return fail("duplicate shard index " + std::to_string(shard.index) +
                  ": given by both " + owner + " and " + shard.name);
    }
    owner = shard.name;
  }

  for (std::uint32_t i = 0; i < expected_count; ++i) {
    if (covered_by[i].empty()) missing.push_back(i);
  }
  std::sort(shards.begin(), shards.end(),
            [](const ParsedShard& a, const ParsedShard& b) {
              return a.index < b.index;
            });
  return true;
}

}  // namespace

std::optional<ShardMerge> merge_sweep_shards_partial(
    const std::vector<std::string>& shard_jsons, std::string* error,
    const std::vector<std::string>* shard_names) {
  std::vector<ParsedShard> shards;
  std::vector<std::uint32_t> missing;
  if (!parse_shard_partition(shard_jsons, shard_names, shards, missing,
                             error)) {
    return std::nullopt;
  }

  ShardMerge merge;
  merge.missing_shards = missing;
  merge.complete = missing.empty();
  if (merge.complete) {
    SweepResult merged;
    merged.total_cells = shards.front().total_cells;
    for (const ParsedShard& shard : shards) {
      merged.cells.insert(merged.cells.end(), shard.cells.begin(),
                          shard.cells.end());
    }
    merge.json = merged.to_json();
    return merge;
  }

  // Degraded document: the full cell list in grid order with an explicit
  // null per missing cell — cell id == array index survives degradation,
  // so downstream analysis can use what exists and see what doesn't.
  const std::uint64_t total = shards.front().total_cells;
  std::uint64_t present = 0;
  for (const ParsedShard& shard : shards) present += shard.cells.size();
  JsonWriter json;
  json.begin_object();
  json.field("partial", true);
  json.field("cell_count", present);
  json.field("total_cells", total);
  json.begin_array("missing_shards");
  for (const std::uint32_t index : missing) {
    json.element(static_cast<std::uint64_t>(index));
  }
  json.end_array();
  json.begin_array("cells");
  std::size_t next_shard = 0;
  std::uint64_t cell = 0;
  while (cell < total) {
    if (next_shard < shards.size() &&
        shards[next_shard].first_cell == cell) {
      for (const SweepCell& item : shards[next_shard].cells) {
        sweep_cell_to_json(json, item);
      }
      cell += shards[next_shard].cells.size();
      ++next_shard;
    } else {
      json.element_null();
      ++cell;
    }
  }
  json.end_array();
  json.end_object();
  merge.json = json.str();
  return merge;
}

std::optional<std::string> merge_sweep_shards(
    const std::vector<std::string>& shard_jsons, std::string* error,
    std::vector<std::uint32_t>* missing_shards,
    const std::vector<std::string>* shard_names) {
  if (missing_shards != nullptr) missing_shards->clear();
  const auto merge =
      merge_sweep_shards_partial(shard_jsons, error, shard_names);
  if (!merge) return std::nullopt;
  if (!merge->complete) {
    if (missing_shards != nullptr) *missing_shards = merge->missing_shards;
    std::string missing_list;
    for (const std::uint32_t index : merge->missing_shards) {
      if (!missing_list.empty()) missing_list += ", ";
      missing_list += std::to_string(index);
    }
    const std::uint32_t count = static_cast<std::uint32_t>(
        merge->missing_shards.size() + shard_jsons.size());
    if (error != nullptr) {
      *error = "need all " + std::to_string(count) + " shards to merge, got " +
               std::to_string(shard_jsons.size()) + " (missing shard" +
               (merge->missing_shards.size() == 1 ? "" : "s") + " " +
               missing_list + " of " + std::to_string(count) + ")";
    }
    return std::nullopt;
  }
  return merge->json;
}

SweepRunner::SweepRunner(std::uint32_t threads, std::uint32_t engine_threads)
    : threads_(threads), engine_threads_(engine_threads) {
  if (threads_ == 0) {
    threads_ = std::thread::hardware_concurrency();
    if (threads_ == 0) threads_ = 1;
  }
  if (engine_threads_ == 0) {
    engine_threads_ = HwTopology::detect().physical_cores;
  }
}

SweepResult SweepRunner::run(const SweepSpec& spec, SweepShard shard,
                             const ProgressFn& progress,
                             const CancelFn& cancel) const {
  const auto invalid = spec.validate();
  PEF_CHECK_MSG(!invalid.has_value(), "invalid sweep spec");
  PEF_CHECK_MSG(shard.count >= 1 && shard.index < shard.count,
                "shard must be index/count with index < count");

  const std::vector<CellTask> tasks = enumerate_cells(spec);
  // The shard's contiguous cell slice; cell coordinates (and thus results)
  // are independent of the slicing.
  const std::size_t lo = tasks.size() * shard.index / shard.count;
  const std::size_t hi = tasks.size() * (shard.index + 1) / shard.count;
  const std::vector<CellGroup> groups = group_cells(tasks, lo, hi);
  SweepContext context = make_context(spec);
  context.engine_threads = engine_threads_;

  SweepResult result;
  result.threads = threads_;
  result.shard = shard;
  result.first_cell = lo;
  result.total_cells = tasks.size();
  result.spec_json = spec.to_json();
  result.cells.resize(hi - lo);
  // Groups index cells by absolute cell id; the result vector holds the
  // shard's slice, so slot(group) rebases onto it.
  const auto slot = [&result, lo](const CellGroup& group) {
    return result.cells.data() + (group.first - lo);
  };

  // Scheduling-only decisions (results are slot-indexed and thus identical
  // regardless): clamp workers to the hardware, run small grids serially —
  // thread startup costs more than it saves below ~a million rounds — and
  // hand out groups in chunks so workers do not ping-pong the cursor cache
  // line on grids with many tiny groups.
  constexpr std::uint64_t kSerialThresholdRounds = 1'000'000;
  std::uint64_t total_rounds = 0;
  for (std::size_t t = lo; t < hi; ++t) {
    total_rounds += spec.horizon_for(tasks[t].nodes);
  }
  std::uint32_t hardware = std::thread::hardware_concurrency();
  if (hardware == 0) hardware = 1;
  std::uint32_t workers = std::min(threads_, hardware);
  workers = std::min<std::uint32_t>(
      workers, static_cast<std::uint32_t>(groups.size()));
  const bool serial = workers <= 1 || total_rounds < kSerialThresholdRounds;

  // Cells completed so far (for the progress observer only; results never
  // depend on it).
  std::atomic<std::uint64_t> done{0};
  const auto run_one = [&](const CellGroup& group) {
    const auto group_start = std::chrono::steady_clock::now();
    run_group(context, tasks, group, slot(group));
    if (progress) {
      const double secs = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - group_start)
                              .count();
      const std::uint64_t finished =
          done.fetch_add(group.count, std::memory_order_relaxed) +
          group.count;
      progress(finished, hi - lo, secs);
    }
  };

  // Cancellation is polled between groups only: a group in flight always
  // finishes, so every completed cell is whole and bit-identical to an
  // uncancelled run's.
  std::atomic<bool> stop_requested{false};
  const auto should_stop = [&] {
    if (stop_requested.load(std::memory_order_relaxed)) return true;
    if (cancel && cancel()) {
      stop_requested.store(true, std::memory_order_relaxed);
      return true;
    }
    return false;
  };

  const auto start = std::chrono::steady_clock::now();
  if (serial) {
    for (const CellGroup& group : groups) {
      if (should_stop()) break;
      run_one(group);
    }
  } else {
    const std::size_t chunk = std::clamp<std::size_t>(
        groups.size() / (std::size_t{workers} * 8), 1, 32);
    std::atomic<std::size_t> cursor{0};
    auto worker = [&] {
      for (;;) {
        const std::size_t begin =
            cursor.fetch_add(chunk, std::memory_order_relaxed);
        if (begin >= groups.size()) return;
        const std::size_t end = std::min(begin + chunk, groups.size());
        for (std::size_t g = begin; g < end; ++g) {
          if (should_stop()) return;
          run_one(groups[g]);
        }
      }
    };
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (std::uint32_t t = 0; t < workers; ++t) pool.emplace_back(worker);
    for (std::thread& t : pool) t.join();
  }
  result.cancelled = stop_requested.load(std::memory_order_relaxed);
  const auto stop = std::chrono::steady_clock::now();
  result.wall_seconds = std::chrono::duration<double>(stop - start).count();
  return result;
}

}  // namespace pef
