#include "engine/sweep_runner.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <optional>
#include <thread>

#include "algorithms/registry.hpp"
#include "common/check.hpp"
#include "common/json.hpp"
#include "common/rng.hpp"
#include "engine/batch_engine.hpp"
#include "scheduler/simulator.hpp"

namespace pef {
namespace {

/// Flat description of one grid cell, precomputed so workers index into an
/// immutable task list.
struct CellTask {
  std::size_t algorithm_index = 0;
  std::size_t adversary_index = 0;
  std::size_t model_index = 0;
  std::uint32_t nodes = 0;
  std::uint32_t robots = 0;
  std::uint64_t seed = 0;
};

std::vector<CellTask> enumerate_cells(const SweepGrid& grid) {
  std::vector<CellTask> tasks;
  for (std::size_t a = 0; a < grid.algorithms.size(); ++a) {
    for (std::size_t d = 0; d < grid.adversaries.size(); ++d) {
      for (std::size_t m = 0; m < grid.models.size(); ++m) {
        for (const std::uint32_t n : grid.ring_sizes) {
          for (const std::uint32_t k : grid.robot_counts) {
            if (k == 0 || k >= n) continue;  // not well-initiated
            for (const std::uint64_t seed : grid.seeds) {
              tasks.push_back({a, d, m, n, k, seed});
            }
          }
        }
      }
    }
  }
  return tasks;
}

void fill_coordinates(const SweepGrid& grid, const CellTask& task,
                      SweepCell& cell) {
  cell.algorithm = grid.algorithms[task.algorithm_index];
  cell.adversary = grid.adversaries[task.adversary_index].name;
  cell.model = grid.models[task.model_index];
  cell.nodes = task.nodes;
  cell.robots = task.robots;
  cell.seed = task.seed;
  cell.effective_seed =
      effective_seed(task.seed, task.algorithm_index, task.adversary_index,
                     task.nodes, task.robots, task.model_index);
  cell.horizon = grid.horizon_for(task.nodes);
}

void fill_metrics(const EngineStats& stats, const CoverageReport& coverage,
                  SweepCell& cell) {
  cell.perpetual = coverage.perpetual(cell.nodes);
  cell.covered = coverage.cover_time.has_value();
  cell.cover_time = coverage.cover_time.value_or(0);
  cell.max_revisit_gap = coverage.max_revisit_gap;
  cell.tower_rounds = stats.tower_rounds;
  cell.tower_formations = stats.tower_formations;
  cell.total_moves = stats.total_moves;
}

std::vector<RobotPlacement> placements_for(const SweepGrid& grid,
                                           const Ring& ring,
                                           std::uint32_t robots,
                                           std::uint64_t eff_seed) {
  return grid.random_placements
             ? random_placements(ring, robots, derive_seed(eff_seed, 0x91ace))
             : spread_placements(ring, robots);
}

SweepCell run_cell(const SweepGrid& grid, const CellTask& task) {
  SweepCell cell;
  fill_coordinates(grid, task, cell);

  const Ring ring(task.nodes);
  const std::vector<RobotPlacement> placements =
      placements_for(grid, ring, task.robots, cell.effective_seed);

  AlgorithmPtr algorithm = make_algorithm(cell.algorithm, cell.effective_seed);
  AdversaryPtr adversary =
      grid.adversaries[task.adversary_index].make(ring, cell.effective_seed);

  const auto start = std::chrono::steady_clock::now();
  std::optional<Engine> engine_slot;
  switch (cell.model) {
    case ExecutionModel::kFsync:
      engine_slot.emplace(ring, std::move(algorithm), std::move(adversary),
                          placements);
      break;
    case ExecutionModel::kSsync:
      engine_slot.emplace(
          ring, std::move(algorithm),
          std::make_unique<SsyncFromFsyncAdversary>(std::move(adversary)),
          standard_ssync_activation(grid.activation_p, cell.effective_seed),
          placements);
      break;
    case ExecutionModel::kAsync:
      engine_slot.emplace(
          ring, std::move(algorithm),
          std::make_unique<SsyncFromFsyncAdversary>(std::move(adversary)),
          standard_async_phases(grid.activation_p, cell.effective_seed),
          placements);
      break;
  }
  Engine& engine = *engine_slot;
  engine.run(cell.horizon);
  const auto stop = std::chrono::steady_clock::now();

  fill_metrics(engine.stats(), engine.coverage_report(), cell);
  cell.wall_seconds =
      std::chrono::duration<double>(stop - start).count();
  return cell;
}

/// Run `count` consecutive same-scenario tasks (differing only in seed) as
/// one BatchEngine of per-seed replicas.  `cells` points at the group's
/// output slots.
void run_batched(const SweepGrid& grid, const CellTask* tasks,
                 std::uint32_t count, SweepCell* cells) {
  const Ring ring(tasks[0].nodes);
  const ExecutionModel model = grid.models[tasks[0].model_index];

  std::vector<BatchReplica> replicas(count);
  for (std::uint32_t b = 0; b < count; ++b) {
    SweepCell& cell = cells[b];
    fill_coordinates(grid, tasks[b], cell);
    BatchReplica& replica = replicas[b];
    replica.algorithm = make_algorithm(cell.algorithm, cell.effective_seed);
    replica.placements =
        placements_for(grid, ring, cell.robots, cell.effective_seed);
    replica.horizon = cell.horizon;
    wire_standard_replica(
        replica, model,
        grid.adversaries[tasks[b].adversary_index].make(ring,
                                                        cell.effective_seed),
        grid.activation_p, cell.effective_seed);
  }

  const auto start = std::chrono::steady_clock::now();
  BatchEngine engine(ring, model, std::move(replicas));
  engine.run_all();
  const auto stop = std::chrono::steady_clock::now();
  const double wall =
      std::chrono::duration<double>(stop - start).count() / count;

  for (std::uint32_t b = 0; b < count; ++b) {
    fill_metrics(engine.stats(b), engine.coverage_report(b), cells[b]);
    cells[b].wall_seconds = wall;
  }
}

/// A maximal run of tasks sharing every coordinate but the seed.
struct CellGroup {
  std::size_t first = 0;
  std::uint32_t count = 0;
};

std::vector<CellGroup> group_cells(const std::vector<CellTask>& tasks) {
  std::vector<CellGroup> groups;
  for (std::size_t i = 0; i < tasks.size();) {
    std::size_t j = i + 1;
    while (j < tasks.size() &&
           tasks[j].algorithm_index == tasks[i].algorithm_index &&
           tasks[j].adversary_index == tasks[i].adversary_index &&
           tasks[j].model_index == tasks[i].model_index &&
           tasks[j].nodes == tasks[i].nodes &&
           tasks[j].robots == tasks[i].robots) {
      ++j;
    }
    groups.push_back({i, static_cast<std::uint32_t>(j - i)});
    i = j;
  }
  return groups;
}

void run_group(const SweepGrid& grid, const std::vector<CellTask>& tasks,
               const CellGroup& group,
               const std::vector<std::uint8_t>& algorithm_has_kernel,
               SweepCell* cells) {
  // Seed groups batch when the algorithm has a kernel (every registry
  // algorithm does; bespoke kernel-less algorithms fall back to per-cell
  // Engines).  Results are identical either way.
  const bool batchable =
      grid.batch_seeds && group.count > 1 &&
      algorithm_has_kernel[tasks[group.first].algorithm_index] != 0;
  if (!batchable) {
    for (std::uint32_t b = 0; b < group.count; ++b) {
      cells[b] = run_cell(grid, tasks[group.first + b]);
    }
    return;
  }
  const std::uint32_t max_batch = grid.max_batch == 0 ? 64 : grid.max_batch;
  for (std::uint32_t off = 0; off < group.count; off += max_batch) {
    const std::uint32_t count = std::min(max_batch, group.count - off);
    run_batched(grid, tasks.data() + group.first + off, count, cells + off);
  }
}

}  // namespace

std::uint64_t effective_seed(std::uint64_t grid_seed,
                             std::size_t algorithm_index,
                             std::size_t adversary_index, std::uint32_t nodes,
                             std::uint32_t robots, std::size_t model_index) {
  // model_index 0 leaves the stream unchanged, so FSYNC-only grids (and
  // every pre-model-axis grid) keep their historical per-cell seeds.
  return derive_seed(grid_seed, algorithm_index,
                     (static_cast<std::uint64_t>(adversary_index) << 32) |
                         nodes,
                     (static_cast<std::uint64_t>(model_index) << 32) |
                         robots);
}

std::uint64_t SweepResult::total_rounds() const {
  std::uint64_t total = 0;
  for (const SweepCell& cell : cells) total += cell.horizon;
  return total;
}

std::string SweepResult::to_json() const {
  JsonWriter json;
  json.begin_object();
  json.field("cell_count", static_cast<std::uint64_t>(cells.size()));
  json.begin_array("cells");
  for (const SweepCell& cell : cells) {
    json.begin_object();
    json.field("algorithm", cell.algorithm);
    json.field("adversary", cell.adversary);
    json.field("model", to_string(cell.model));
    json.field("n", cell.nodes);
    json.field("k", cell.robots);
    json.field("seed", cell.seed);
    json.field("effective_seed", cell.effective_seed);
    json.field("horizon", cell.horizon);
    json.field("perpetual", cell.perpetual);
    if (cell.covered) {
      json.field("cover_time", cell.cover_time);
    } else {
      json.null_field("cover_time");
    }
    json.field("max_revisit_gap", cell.max_revisit_gap);
    json.field("tower_rounds", cell.tower_rounds);
    json.field("tower_formations", cell.tower_formations);
    json.field("total_moves", cell.total_moves);
    json.end_object();
  }
  json.end_array();
  json.end_object();
  return json.str();
}

SweepRunner::SweepRunner(std::uint32_t threads) : threads_(threads) {
  if (threads_ == 0) {
    threads_ = std::thread::hardware_concurrency();
    if (threads_ == 0) threads_ = 1;
  }
}

SweepResult SweepRunner::run(const SweepGrid& grid) const {
  PEF_CHECK(!grid.algorithms.empty());
  PEF_CHECK(!grid.adversaries.empty());
  PEF_CHECK(!grid.models.empty());
  PEF_CHECK(!grid.ring_sizes.empty());
  PEF_CHECK(!grid.robot_counts.empty());
  PEF_CHECK(!grid.seeds.empty());

  const std::vector<CellTask> tasks = enumerate_cells(grid);
  const std::vector<CellGroup> groups = group_cells(tasks);
  // Kernel availability is a property of the algorithm name; probe once
  // per grid entry instead of constructing an Algorithm per seed group.
  std::vector<std::uint8_t> algorithm_has_kernel(grid.algorithms.size(), 0);
  for (std::size_t a = 0; a < grid.algorithms.size(); ++a) {
    algorithm_has_kernel[a] =
        make_algorithm(grid.algorithms[a], 0)->kernel().has_value() ? 1 : 0;
  }
  SweepResult result;
  result.threads = threads_;
  result.cells.resize(tasks.size());

  // Scheduling-only decisions (results are slot-indexed and thus identical
  // regardless): clamp workers to the hardware, run small grids serially —
  // thread startup costs more than it saves below ~a million rounds — and
  // hand out groups in chunks so workers do not ping-pong the cursor cache
  // line on grids with many tiny groups.
  constexpr std::uint64_t kSerialThresholdRounds = 1'000'000;
  std::uint64_t total_rounds = 0;
  for (const CellTask& task : tasks) total_rounds += grid.horizon_for(task.nodes);
  std::uint32_t hardware = std::thread::hardware_concurrency();
  if (hardware == 0) hardware = 1;
  std::uint32_t workers = std::min(threads_, hardware);
  workers = std::min<std::uint32_t>(
      workers, static_cast<std::uint32_t>(groups.size()));
  const bool serial = workers <= 1 || total_rounds < kSerialThresholdRounds;

  const auto start = std::chrono::steady_clock::now();
  if (serial) {
    for (const CellGroup& group : groups) {
      run_group(grid, tasks, group, algorithm_has_kernel,
                result.cells.data() + group.first);
    }
  } else {
    const std::size_t chunk = std::clamp<std::size_t>(
        groups.size() / (std::size_t{workers} * 8), 1, 32);
    std::atomic<std::size_t> cursor{0};
    auto worker = [&] {
      for (;;) {
        const std::size_t begin =
            cursor.fetch_add(chunk, std::memory_order_relaxed);
        if (begin >= groups.size()) return;
        const std::size_t end = std::min(begin + chunk, groups.size());
        for (std::size_t g = begin; g < end; ++g) {
          run_group(grid, tasks, groups[g], algorithm_has_kernel,
                    result.cells.data() + groups[g].first);
        }
      }
    };
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (std::uint32_t t = 0; t < workers; ++t) pool.emplace_back(worker);
    for (std::thread& t : pool) t.join();
  }
  const auto stop = std::chrono::steady_clock::now();
  result.wall_seconds = std::chrono::duration<double>(stop - start).count();
  return result;
}

}  // namespace pef
