#include "engine/sweep_runner.hpp"

#include <atomic>
#include <chrono>
#include <optional>
#include <thread>

#include "algorithms/registry.hpp"
#include "common/check.hpp"
#include "common/json.hpp"
#include "common/rng.hpp"
#include "scheduler/simulator.hpp"

namespace pef {
namespace {

/// Flat description of one grid cell, precomputed so workers index into an
/// immutable task list.
struct CellTask {
  std::size_t algorithm_index = 0;
  std::size_t adversary_index = 0;
  std::size_t model_index = 0;
  std::uint32_t nodes = 0;
  std::uint32_t robots = 0;
  std::uint64_t seed = 0;
};

std::vector<CellTask> enumerate_cells(const SweepGrid& grid) {
  std::vector<CellTask> tasks;
  for (std::size_t a = 0; a < grid.algorithms.size(); ++a) {
    for (std::size_t d = 0; d < grid.adversaries.size(); ++d) {
      for (std::size_t m = 0; m < grid.models.size(); ++m) {
        for (const std::uint32_t n : grid.ring_sizes) {
          for (const std::uint32_t k : grid.robot_counts) {
            if (k == 0 || k >= n) continue;  // not well-initiated
            for (const std::uint64_t seed : grid.seeds) {
              tasks.push_back({a, d, m, n, k, seed});
            }
          }
        }
      }
    }
  }
  return tasks;
}

SweepCell run_cell(const SweepGrid& grid, const CellTask& task) {
  SweepCell cell;
  cell.algorithm = grid.algorithms[task.algorithm_index];
  cell.adversary = grid.adversaries[task.adversary_index].name;
  cell.model = grid.models[task.model_index];
  cell.nodes = task.nodes;
  cell.robots = task.robots;
  cell.seed = task.seed;
  cell.effective_seed =
      effective_seed(task.seed, task.algorithm_index, task.adversary_index,
                     task.nodes, task.robots, task.model_index);
  cell.horizon = grid.horizon_for(task.nodes);

  const Ring ring(task.nodes);
  const std::vector<RobotPlacement> placements =
      grid.random_placements
          ? random_placements(ring, task.robots,
                              derive_seed(cell.effective_seed, 0x91ace))
          : spread_placements(ring, task.robots);

  AlgorithmPtr algorithm = make_algorithm(cell.algorithm, cell.effective_seed);
  AdversaryPtr adversary =
      grid.adversaries[task.adversary_index].make(ring, cell.effective_seed);

  const auto start = std::chrono::steady_clock::now();
  std::optional<Engine> engine_slot;
  switch (cell.model) {
    case ExecutionModel::kFsync:
      engine_slot.emplace(ring, std::move(algorithm), std::move(adversary),
                          placements);
      break;
    case ExecutionModel::kSsync:
      engine_slot.emplace(
          ring, std::move(algorithm),
          std::make_unique<SsyncFromFsyncAdversary>(std::move(adversary)),
          standard_ssync_activation(grid.activation_p, cell.effective_seed),
          placements);
      break;
    case ExecutionModel::kAsync:
      engine_slot.emplace(
          ring, std::move(algorithm),
          std::make_unique<SsyncFromFsyncAdversary>(std::move(adversary)),
          standard_async_phases(grid.activation_p, cell.effective_seed),
          placements);
      break;
  }
  Engine& engine = *engine_slot;
  engine.run(cell.horizon);
  const auto stop = std::chrono::steady_clock::now();

  const EngineStats& stats = engine.stats();
  const CoverageReport coverage = engine.coverage_report();
  cell.perpetual = coverage.perpetual(task.nodes);
  cell.covered = coverage.cover_time.has_value();
  cell.cover_time = coverage.cover_time.value_or(0);
  cell.max_revisit_gap = coverage.max_revisit_gap;
  cell.tower_rounds = stats.tower_rounds;
  cell.tower_formations = stats.tower_formations;
  cell.total_moves = stats.total_moves;
  cell.wall_seconds =
      std::chrono::duration<double>(stop - start).count();
  return cell;
}

}  // namespace

std::uint64_t effective_seed(std::uint64_t grid_seed,
                             std::size_t algorithm_index,
                             std::size_t adversary_index, std::uint32_t nodes,
                             std::uint32_t robots, std::size_t model_index) {
  // model_index 0 leaves the stream unchanged, so FSYNC-only grids (and
  // every pre-model-axis grid) keep their historical per-cell seeds.
  return derive_seed(grid_seed, algorithm_index,
                     (static_cast<std::uint64_t>(adversary_index) << 32) |
                         nodes,
                     (static_cast<std::uint64_t>(model_index) << 32) |
                         robots);
}

std::uint64_t SweepResult::total_rounds() const {
  std::uint64_t total = 0;
  for (const SweepCell& cell : cells) total += cell.horizon;
  return total;
}

std::string SweepResult::to_json() const {
  JsonWriter json;
  json.begin_object();
  json.field("cell_count", static_cast<std::uint64_t>(cells.size()));
  json.begin_array("cells");
  for (const SweepCell& cell : cells) {
    json.begin_object();
    json.field("algorithm", cell.algorithm);
    json.field("adversary", cell.adversary);
    json.field("model", to_string(cell.model));
    json.field("n", cell.nodes);
    json.field("k", cell.robots);
    json.field("seed", cell.seed);
    json.field("effective_seed", cell.effective_seed);
    json.field("horizon", cell.horizon);
    json.field("perpetual", cell.perpetual);
    if (cell.covered) {
      json.field("cover_time", cell.cover_time);
    } else {
      json.null_field("cover_time");
    }
    json.field("max_revisit_gap", cell.max_revisit_gap);
    json.field("tower_rounds", cell.tower_rounds);
    json.field("tower_formations", cell.tower_formations);
    json.field("total_moves", cell.total_moves);
    json.end_object();
  }
  json.end_array();
  json.end_object();
  return json.str();
}

SweepRunner::SweepRunner(std::uint32_t threads) : threads_(threads) {
  if (threads_ == 0) {
    threads_ = std::thread::hardware_concurrency();
    if (threads_ == 0) threads_ = 1;
  }
}

SweepResult SweepRunner::run(const SweepGrid& grid) const {
  PEF_CHECK(!grid.algorithms.empty());
  PEF_CHECK(!grid.adversaries.empty());
  PEF_CHECK(!grid.models.empty());
  PEF_CHECK(!grid.ring_sizes.empty());
  PEF_CHECK(!grid.robot_counts.empty());
  PEF_CHECK(!grid.seeds.empty());

  const std::vector<CellTask> tasks = enumerate_cells(grid);
  SweepResult result;
  result.threads = threads_;
  result.cells.resize(tasks.size());

  const auto start = std::chrono::steady_clock::now();
  std::atomic<std::size_t> cursor{0};
  auto worker = [&] {
    for (;;) {
      const std::size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
      if (i >= tasks.size()) return;
      result.cells[i] = run_cell(grid, tasks[i]);
    }
  };

  if (threads_ <= 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(threads_);
    for (std::uint32_t t = 0; t < threads_; ++t) pool.emplace_back(worker);
    for (std::thread& t : pool) t.join();
  }
  const auto stop = std::chrono::steady_clock::now();
  result.wall_seconds = std::chrono::duration<double>(stop - start).count();
  return result;
}

}  // namespace pef
