#include "engine/topology.hpp"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <new>
#include <string>
#include <utility>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#include <sys/mman.h>
#endif

#include "common/check.hpp"

namespace pef {
namespace {

/// Read a small sysfs file into `out`; false when absent/unreadable.
bool read_sysfs(const std::string& path, std::string& out) {
  std::ifstream in(path);
  if (!in) return false;
  std::getline(in, out);
  return !out.empty();
}

/// Parse a cpulist ("0-3,8,10-11") into cpu ids; malformed input yields
/// what parsed so far (callers treat empty as failure).
std::vector<std::uint32_t> parse_cpulist(const std::string& list) {
  std::vector<std::uint32_t> cpus;
  const char* p = list.c_str();
  while (*p != '\0') {
    char* end = nullptr;
    const unsigned long lo = std::strtoul(p, &end, 10);
    if (end == p) break;
    unsigned long hi = lo;
    p = end;
    if (*p == '-') {
      hi = std::strtoul(p + 1, &end, 10);
      if (end == p + 1) break;
      p = end;
    }
    for (unsigned long c = lo; c <= hi; ++c) {
      cpus.push_back(static_cast<std::uint32_t>(c));
    }
    if (*p == ',') ++p;
  }
  return cpus;
}

HwTopology fallback_topology() {
  HwTopology t;
  const unsigned hc = std::thread::hardware_concurrency();
  t.logical_cpus = hc != 0 ? hc : 1;
  t.physical_cores = t.logical_cpus;
  t.numa_nodes = 1;
  t.core_of_cpu.resize(t.logical_cpus);
  t.numa_of_cpu.assign(t.logical_cpus, 0);
  t.pin_order.resize(t.logical_cpus);
  for (std::uint32_t c = 0; c < t.logical_cpus; ++c) {
    t.core_of_cpu[c] = c;
    t.pin_order[c] = c;
  }
  return t;
}

}  // namespace

HwTopology HwTopology::parse(const char* sysfs_root) {
  const std::string root = sysfs_root != nullptr ? sysfs_root : "/sys";

  std::string online;
  if (!read_sysfs(root + "/devices/system/cpu/online", online)) {
    return fallback_topology();
  }
  const std::vector<std::uint32_t> cpus = parse_cpulist(online);
  if (cpus.empty()) return fallback_topology();

  HwTopology t;
  t.from_sysfs = true;
  const std::uint32_t max_cpu = *std::max_element(cpus.begin(), cpus.end());
  t.logical_cpus = static_cast<std::uint32_t>(cpus.size());
  t.core_of_cpu.assign(max_cpu + 1, 0);
  t.numa_of_cpu.assign(max_cpu + 1, 0);

  // Physical cores: densify (package_id, core_id) pairs.  A missing
  // topology directory (containers often mask it) degrades to one core
  // per cpu, never to a parse failure.
  std::map<std::pair<unsigned long, unsigned long>, std::uint32_t> core_ids;
  for (const std::uint32_t cpu : cpus) {
    const std::string base =
        root + "/devices/system/cpu/cpu" + std::to_string(cpu) + "/topology/";
    std::string core_s;
    std::string pkg_s;
    unsigned long core = cpu;
    unsigned long pkg = 0;
    if (read_sysfs(base + "core_id", core_s)) {
      core = std::strtoul(core_s.c_str(), nullptr, 10);
    }
    if (read_sysfs(base + "physical_package_id", pkg_s)) {
      pkg = std::strtoul(pkg_s.c_str(), nullptr, 10);
    }
    const auto key = std::make_pair(pkg, core);
    const auto [it, inserted] =
        core_ids.emplace(key, static_cast<std::uint32_t>(core_ids.size()));
    t.core_of_cpu[cpu] = it->second;
  }
  t.physical_cores = static_cast<std::uint32_t>(core_ids.size());

  // NUMA nodes from the node*/cpulist files; absent tree = one node.
  std::uint32_t nodes = 0;
  for (std::uint32_t node = 0;; ++node) {
    std::string list;
    if (!read_sysfs(root + "/devices/system/node/node" + std::to_string(node) +
                        "/cpulist",
                    list)) {
      break;
    }
    for (const std::uint32_t cpu : parse_cpulist(list)) {
      if (cpu < t.numa_of_cpu.size()) t.numa_of_cpu[cpu] = node;
    }
    ++nodes;
  }
  t.numa_nodes = nodes != 0 ? nodes : 1;

  // Pinning order: first CPU of every physical core (round-robin over NUMA
  // nodes so a small team spreads across memory controllers), then the
  // remaining SMT siblings in cpu order.
  std::vector<std::uint8_t> core_taken(t.physical_cores, 0);
  std::vector<std::uint32_t> primaries;
  std::vector<std::uint32_t> siblings;
  for (const std::uint32_t cpu : cpus) {
    if (!core_taken[t.core_of_cpu[cpu]]) {
      core_taken[t.core_of_cpu[cpu]] = 1;
      primaries.push_back(cpu);
    } else {
      siblings.push_back(cpu);
    }
  }
  std::stable_sort(primaries.begin(), primaries.end(),
                   [&](std::uint32_t a, std::uint32_t b) {
                     return t.numa_of_cpu[a] < t.numa_of_cpu[b];
                   });
  // Interleave nodes: node0's first core, node1's first core, ...
  if (t.numa_nodes > 1) {
    std::vector<std::vector<std::uint32_t>> by_node(t.numa_nodes);
    for (const std::uint32_t cpu : primaries) {
      by_node[t.numa_of_cpu[cpu]].push_back(cpu);
    }
    primaries.clear();
    for (std::size_t i = 0;; ++i) {
      bool any = false;
      for (auto& node_cpus : by_node) {
        if (i < node_cpus.size()) {
          primaries.push_back(node_cpus[i]);
          any = true;
        }
      }
      if (!any) break;
    }
  }
  t.pin_order = std::move(primaries);
  t.pin_order.insert(t.pin_order.end(), siblings.begin(), siblings.end());
  return t;
}

const HwTopology& HwTopology::detect() {
  static const HwTopology instance = parse("/sys");
  return instance;
}

bool pin_current_thread(std::uint32_t cpu) {
#if defined(__linux__)
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(cpu, &set);
  return pthread_setaffinity_np(pthread_self(), sizeof(set), &set) == 0;
#else
  (void)cpu;
  return false;
#endif
}

// ---------------------------------------------------------------------------
// Plane memory

void* plane_alloc(std::size_t bytes) {
  if (bytes == 0) bytes = 1;
  const std::size_t align = bytes >= kHugePlaneBytes ? kHugePlaneBytes : 64;
  void* p = ::operator new(bytes, std::align_val_t{align});
#if defined(__linux__)
  if (bytes >= kHugePlaneBytes) {
    // Advisory: THP=madvise systems only back madvised regions with huge
    // pages, and 2 MiB alignment makes every full extent collapsible.
    (void)madvise(p, bytes, MADV_HUGEPAGE);
  }
#endif
  return p;
}

void plane_free(void* p, std::size_t bytes) noexcept {
  if (p == nullptr) return;
  if (bytes == 0) bytes = 1;
  const std::size_t align = bytes >= kHugePlaneBytes ? kHugePlaneBytes : 64;
  ::operator delete(p, std::align_val_t{align});
}

// ---------------------------------------------------------------------------
// WorkerTeam

namespace {
inline void cpu_relax() {
#if defined(__x86_64__)
  __builtin_ia32_pause();
#else
  std::this_thread::yield();
#endif
}
}  // namespace

WorkerTeam::WorkerTeam(std::uint32_t slots) : slots_(slots < 1 ? 1 : slots) {
  if (slots_ == 1) return;
  const HwTopology& topo = HwTopology::detect();
  threads_.reserve(slots_ - 1);
  for (std::uint32_t s = 1; s < slots_; ++s) {
    threads_.emplace_back([this, s, &topo] {
      // Slot s takes pin slot s (slot 0, the caller, keeps its affinity);
      // oversubscribed teams wrap around.
      if (topo.logical_cpus > 1 && !topo.pin_order.empty()) {
        pin_current_thread(topo.pin_order[s % topo.pin_order.size()]);
      }
      worker_main(s);
    });
  }
}

WorkerTeam::~WorkerTeam() {
  if (threads_.empty()) return;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_.store(true, std::memory_order_release);
    generation_.fetch_add(1, std::memory_order_release);
  }
  cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void WorkerTeam::run(void (*job)(void*, std::uint32_t), void* ctx) {
  if (threads_.empty()) {
    job(ctx, 0);
    return;
  }
  job_ = job;
  ctx_ = ctx;
  pending_.store(slots_, std::memory_order_relaxed);
  generation_.fetch_add(1, std::memory_order_release);
  if (parked_.load(std::memory_order_acquire) != 0) {
    // Publish under the lock so a worker checking stop/generation before
    // parking cannot miss the wake.
    std::lock_guard<std::mutex> lock(mutex_);
    cv_.notify_all();
  }
  job(ctx, 0);
  pending_.fetch_sub(1, std::memory_order_acq_rel);
  while (pending_.load(std::memory_order_acquire) != 0) cpu_relax();
}

void WorkerTeam::worker_main(std::uint32_t slot) {
  std::uint64_t seen = 0;
  for (;;) {
    // Spin briefly — rounds arrive microseconds apart while a batch is
    // running — then park until the next publish.
    std::uint32_t spins = 0;
    while (generation_.load(std::memory_order_acquire) == seen) {
      if (++spins < 4096) {
        cpu_relax();
        continue;
      }
      std::unique_lock<std::mutex> lock(mutex_);
      parked_.fetch_add(1, std::memory_order_acq_rel);
      cv_.wait(lock, [this, seen] {
        return generation_.load(std::memory_order_acquire) != seen;
      });
      parked_.fetch_sub(1, std::memory_order_acq_rel);
    }
    seen = generation_.load(std::memory_order_acquire);
    if (stop_.load(std::memory_order_acquire)) return;
    job_(ctx_, slot);
    pending_.fetch_sub(1, std::memory_order_acq_rel);
  }
}

}  // namespace pef
