#include "engine/batch_engine.hpp"

#include <algorithm>
#include <limits>
#include <utility>

#include "scheduler/async.hpp"
#include "scheduler/ssync.hpp"

#include "algorithms/kernels.hpp"
#include "common/check.hpp"

namespace pef {
namespace {

/// The batched form of KernelState: references into the per-field state
/// planes, structurally compatible with kernel_compute / init_kernel_state.
struct KernelStateRef {
  Xoshiro256& rng;
  std::uint64_t& counter;
  std::uint8_t& has_moved;
};

/// Bind robot state at plane offset `at`.  Only random-walk batches carry a
/// real rng plane; every other kernel binds (and never touches) the dummy
/// slot 0.
template <KernelId Id>
[[gnu::always_inline]] inline KernelStateRef kernel_state_at(
    Xoshiro256* rng, std::uint64_t* counter, std::uint8_t* has_moved,
    std::size_t at) {
  if constexpr (Id == KernelId::kRandomWalk) {
    return {rng[at], counter[at], has_moved[at]};
  } else {
    return {rng[0], counter[at], has_moved[at]};
  }
}

// The multiplicity row-compare kernel: for every robot i and live lane l,
// count how many robot rows agree with row i at column l (including i
// itself); multiplicity is count > 1.  This is the single densest loop
// nest of a batch round, so it is shaped for registers: the lane axis is
// processed in compile-time-width chunks (W lanes at a time), which fully
// unrolls the per-chunk loops and promotes both the pivot row and the
// accumulators to vector registers — the j loop then touches memory once
// per row.
template <std::uint32_t W>
[[gnu::always_inline]] inline void mult_chunk(const NodeId* __restrict node,
                                              std::uint8_t* __restrict mult,
                                              std::uint8_t* __restrict tower,
                                              std::uint32_t k,
                                              std::uint32_t stride,
                                              std::uint32_t off) {
  // Two pivot rows per sweep: the j loop's row loads are the kernel's only
  // memory traffic, so sharing each row_j between two accumulating pivots
  // halves it.
  std::uint32_t i = 0;
  for (; i + 2 <= k; i += 2) {
    const NodeId* const __restrict row_a = node + std::size_t{i} * stride + off;
    const NodeId* const __restrict row_b =
        node + std::size_t{i + 1} * stride + off;
    NodeId pivot_a[W];
    NodeId pivot_b[W];
    std::uint32_t cnt_a[W];
    std::uint32_t cnt_b[W];
    for (std::uint32_t l = 0; l < W; ++l) {
      pivot_a[l] = row_a[l];
      pivot_b[l] = row_b[l];
      cnt_a[l] = 0;
      cnt_b[l] = 0;
    }
    for (std::uint32_t j = 0; j < k; ++j) {
      const NodeId* const __restrict row_j =
          node + std::size_t{j} * stride + off;
      for (std::uint32_t l = 0; l < W; ++l) {
        const NodeId v = row_j[l];
        cnt_a[l] += pivot_a[l] == v ? 1 : 0;
        cnt_b[l] += pivot_b[l] == v ? 1 : 0;
      }
    }
    std::uint8_t* const __restrict mult_a = mult + std::size_t{i} * stride + off;
    std::uint8_t* const __restrict mult_b =
        mult + std::size_t{i + 1} * stride + off;
    for (std::uint32_t l = 0; l < W; ++l) {
      const std::uint8_t ma = cnt_a[l] > 1 ? 1 : 0;
      const std::uint8_t mb = cnt_b[l] > 1 ? 1 : 0;
      mult_a[l] = ma;
      mult_b[l] = mb;
      tower[off + l] |= ma | mb;
    }
  }
  for (; i < k; ++i) {
    const NodeId* const __restrict row_i = node + std::size_t{i} * stride + off;
    NodeId pivot[W];
    std::uint32_t cnt[W];
    for (std::uint32_t l = 0; l < W; ++l) {
      pivot[l] = row_i[l];
      cnt[l] = 0;
    }
    for (std::uint32_t j = 0; j < k; ++j) {
      const NodeId* const __restrict row_j =
          node + std::size_t{j} * stride + off;
      for (std::uint32_t l = 0; l < W; ++l) {
        cnt[l] += pivot[l] == row_j[l] ? 1 : 0;
      }
    }
    std::uint8_t* const __restrict mult_i = mult + std::size_t{i} * stride + off;
    for (std::uint32_t l = 0; l < W; ++l) {
      const std::uint8_t m = cnt[l] > 1 ? 1 : 0;
      mult_i[l] = m;
      tower[off + l] |= m;
    }
  }
}

// On x86-64/GCC the chunked kernel is cloned per ISA level and
// runtime-dispatched (the portable default stays the only version
// elsewhere).  256-bit is the deliberate ceiling: 512-bit clones measured
// slower here (frequency licensing on the Xeons this targets).
#if defined(__x86_64__) && defined(__GNUC__) && !defined(__clang__)
__attribute__((target_clones("avx2", "default")))
#endif
void compute_multiplicity_rows(const NodeId* __restrict node,
                               std::uint8_t* __restrict mult,
                               std::uint8_t* __restrict tower,
                               std::uint32_t k, std::uint32_t stride,
                               std::uint32_t live) {
  for (std::uint32_t l = 0; l < live; ++l) tower[l] = 0;
  std::uint32_t off = 0;
  for (; off + 16 <= live; off += 16) {
    mult_chunk<16>(node, mult, tower, k, stride, off);
  }
  for (; off + 8 <= live; off += 8) {
    mult_chunk<8>(node, mult, tower, k, stride, off);
  }
  for (; off + 4 <= live; off += 4) {
    mult_chunk<4>(node, mult, tower, k, stride, off);
  }
  for (; off < live; ++off) {
    mult_chunk<1>(node, mult, tower, k, stride, off);
  }
}

/// The two ring-edge ids adjacent to node `u` in a robot's frame: .first
/// is the pointed (ahead) edge, .second the opposite one.  Single source of
/// the ahead/behind mapping all three batched passes share (edge e joins
/// nodes e and e+1 mod n, so the clockwise edge of u is u itself).
[[gnu::always_inline]] inline std::pair<EdgeId, EdgeId> adjacent_edges(
    NodeId u, bool ahead_cw, std::uint32_t n) {
  const EdgeId edge_cw = u;
  const EdgeId edge_ccw = u == 0 ? n - 1 : u - 1;
  return ahead_cw ? std::pair<EdgeId, EdgeId>{edge_cw, edge_ccw}
                  : std::pair<EdgeId, EdgeId>{edge_ccw, edge_cw};
}

[[gnu::always_inline]] inline bool edge_present(const std::uint64_t* words,
                                                EdgeId e) {
  return (words[e >> 6] >> (e & 63)) & 1ULL;
}

/// The node one step from `u` in the given global direction.
[[gnu::always_inline]] inline NodeId step_node(NodeId u, bool clockwise,
                                               std::uint32_t n) {
  return clockwise ? (u + 1 == n ? 0 : u + 1) : (u == 0 ? n - 1 : u - 1);
}

/// Everything the fused FSYNC pass touches, as raw restrict-able pointers,
/// so the pass can live in free functions compiled per ISA level.
struct FsyncPassArgs {
  std::uint32_t live = 0;
  std::uint32_t stride = 0;
  std::uint32_t k = 0;
  std::uint32_t n = 0;
  NodeId* node = nullptr;
  std::uint8_t* dir = nullptr;
  const std::uint8_t* cw = nullptr;
  const std::uint8_t* mult = nullptr;
  Xoshiro256* krng = nullptr;
  std::uint64_t* kcounter = nullptr;
  std::uint8_t* khas_moved = nullptr;
  const KernelSpec* spec = nullptr;
  const std::uint64_t* const* ew = nullptr;
  std::uint64_t* moves = nullptr;
};

// ONE fused Look+Compute+Move pass, replica-stride inner loop.  Fusing is
// sound because every Look input is frozen for the round: E_t and the
// multiplicity plane never change mid-round, and a robot's Move only
// writes its own node-plane slot.  In the AllFull instantiation the body
// is pure contiguous plane arithmetic — no gathers, no branches — which
// is exactly what the replica axis was laid out for.
template <KernelId Id, bool AllFull>
[[gnu::always_inline]] inline void fsync_pass_body(const FsyncPassArgs& a) {
  const std::uint32_t live = a.live;
  const std::uint32_t n = a.n;
  NodeId* const __restrict node = a.node;
  std::uint8_t* const __restrict dir = a.dir;
  const std::uint8_t* const __restrict cw = a.cw;
  const std::uint8_t* const __restrict mult = a.mult;
  Xoshiro256* const __restrict krng = a.krng;
  std::uint64_t* const __restrict kcounter = a.kcounter;
  std::uint8_t* const __restrict khas_moved = a.khas_moved;
  const KernelSpec* const __restrict spec = a.spec;
  const std::uint64_t* const* const __restrict ew = a.ew;

  for (std::uint32_t i = 0; i < a.k; ++i) {
    const std::size_t base = std::size_t{i} * a.stride;
    for (std::uint32_t l = 0; l < live; ++l) {
      const std::size_t at = base + l;
      const NodeId u = node[at];
      View view;
      if constexpr (AllFull) {
        view.exists_edge_ahead = true;
        view.exists_edge_behind = true;
      } else {
        const bool ahead_cw = dir[at] == cw[at];
        const auto [ahead, behind] = adjacent_edges(u, ahead_cw, n);
        const std::uint64_t* const words = ew[l];
        view.exists_edge_ahead = edge_present(words, ahead);
        view.exists_edge_behind = edge_present(words, behind);
      }
      view.other_robots_on_node = mult[at] != 0;
      auto d = static_cast<LocalDirection>(dir[at]);
      kernel_compute<Id>(spec[l], view, d,
                         kernel_state_at<Id>(krng, kcounter, khas_moved, at));
      dir[at] = static_cast<std::uint8_t>(d);

      // Move: cross the pointed edge (in the post-Compute direction) iff
      // present; with a full E_t every robot crosses.
      const bool move_cw = static_cast<std::uint8_t>(d) == cw[at];
      if constexpr (AllFull) {
        node[at] = step_node(u, move_cw, n);
      } else {
        const EdgeId pointed = adjacent_edges(u, move_cw, n).first;
        if (edge_present(ew[l], pointed)) {
          node[at] = step_node(u, move_cw, n);
          ++a.moves[l];
        }
      }
    }
  }
  if constexpr (AllFull) {
    // Every robot of every live replica moved.
    for (std::uint32_t l = 0; l < live; ++l) a.moves[l] += a.k;
  }
}

// The ISA dispatch mirrors compute_multiplicity_rows, but target_clones
// does not apply to templates, so the avx2 wrapper carries a plain target
// attribute (the always_inline body is re-codegenned inside it) and
// fsync_pass_run picks a wrapper once per round.
#if defined(__x86_64__) && defined(__GNUC__) && !defined(__clang__)
#define PEF_BATCH_HAS_AVX2_WRAPPERS 1
template <KernelId Id, bool AllFull>
__attribute__((target("avx2"))) void fsync_pass_avx2(const FsyncPassArgs& a) {
  fsync_pass_body<Id, AllFull>(a);
}
#endif

template <KernelId Id, bool AllFull>
void fsync_pass_portable(const FsyncPassArgs& a) {
  fsync_pass_body<Id, AllFull>(a);
}

[[nodiscard]] inline bool runtime_avx2() {
#ifdef PEF_BATCH_HAS_AVX2_WRAPPERS
  static const bool available = __builtin_cpu_supports("avx2");
  return available;
#else
  return false;
#endif
}

template <KernelId Id, bool AllFull>
void fsync_pass_run(const FsyncPassArgs& a) {
#ifdef PEF_BATCH_HAS_AVX2_WRAPPERS
  if (runtime_avx2()) {
    fsync_pass_avx2<Id, AllFull>(a);
    return;
  }
#endif
  fsync_pass_portable<Id, AllFull>(a);
}

}  // namespace

void wire_standard_replica(BatchReplica& replica, ExecutionModel model,
                           AdversaryPtr adversary, double activation_p,
                           std::uint64_t seed) {
  switch (model) {
    case ExecutionModel::kFsync:
      replica.adversary = std::move(adversary);
      break;
    case ExecutionModel::kSsync:
      replica.ssync_adversary =
          std::make_unique<SsyncFromFsyncAdversary>(std::move(adversary));
      replica.activation = standard_ssync_activation(activation_p, seed);
      break;
    case ExecutionModel::kAsync:
      replica.ssync_adversary =
          std::make_unique<SsyncFromFsyncAdversary>(std::move(adversary));
      replica.phases = standard_async_phases(activation_p, seed);
      break;
  }
}

BatchEngine::BatchEngine(Ring ring, ExecutionModel model,
                         std::vector<BatchReplica> replicas,
                         BatchEngineOptions options)
    : ring_(ring), model_(model), options_(options) {
  PEF_CHECK_MSG(!replicas.empty(), "a batch needs at least one replica");
  batch_ = static_cast<std::uint32_t>(replicas.size());
  active_ = batch_;
  nodes_ = ring_.node_count();
  edge_count_ = ring_.edge_count();
  robots_ = static_cast<std::uint32_t>(replicas[0].placements.size());
  PEF_CHECK(robots_ >= 1);

  const auto kernel0 = replicas[0].algorithm
                           ? replicas[0].algorithm->kernel()
                           : std::nullopt;
  PEF_CHECK_MSG(kernel0.has_value(),
                "BatchEngine runs the devirtualized kernel path; the "
                "algorithm must provide a kernel");
  kernel_id_ = kernel0->id;

  replica_of_lane_.resize(batch_);
  lane_of_replica_.resize(batch_);
  algorithms_.resize(batch_);
  specs_.resize(batch_);
  adversaries_.resize(batch_);
  ssync_advs_.resize(batch_);
  activations_.resize(batch_);
  phase_schedulers_.resize(batch_);
  schedules_.assign(batch_, nullptr);
  mirrors_.resize(batch_);
  horizons_.resize(batch_);

  const std::size_t plane = std::size_t{robots_} * batch_;
  node_.assign(plane, 0);
  dir_.assign(plane, static_cast<std::uint8_t>(LocalDirection::kLeft));
  right_cw_.assign(plane, 0);
  mult_.assign(plane, 0);
  kcounter_.assign(plane, 0);
  khas_moved_.assign(plane, 0);
  krng_.assign(kernel_id_ == KernelId::kRandomWalk ? plane : 1,
               Xoshiro256(0));
  if (model_ == ExecutionModel::kAsync) {
    phases_.assign(plane, static_cast<std::uint8_t>(Phase::kLook));
    pending_views_.assign(plane, View{});
    phase_scratch_.assign(robots_, Phase::kLook);
  }

  visits_.assign(std::size_t{batch_} * nodes_, VisitCell{});

  // Multiplicity path selection (see recompute_multiplicity): row compares
  // need enough replicas to amortize and O(k^2) work a moderate k.
  stamped_mult_ = batch_ < 4 || robots_ >= 48;
  if (stamped_mult_) {
    stamp_epoch_.assign(std::size_t{batch_} * nodes_, 0);
    stamp_count_.assign(std::size_t{batch_} * nodes_, 0);
  }

  edges_.resize(batch_);
  edge_words_.assign(batch_, nullptr);
  refill_.assign(batch_, 1);
  edges_full_.assign(batch_, 0);
  masks_.resize(batch_);
  moving_.resize(batch_);
  moves_.assign(batch_, 0);
  tower_flag_.assign(batch_, 0);
  prev_had_tower_.assign(batch_, 0);
  max_closed_gap_.assign(batch_, 0);
  stats_.assign(batch_, EngineStats{});

  for (std::uint32_t l = 0; l < batch_; ++l) {
    replica_of_lane_[l] = l;
    lane_of_replica_[l] = l;
    init_replica(l, replicas[l]);
  }

  // The t = 0 boundary (Engine::init's observe_boundary(0)).
  recompute_multiplicity();
  observe_boundary(0);
  for (std::uint32_t l = 0; l < batch_; ++l) {
    if (tower_flag_[l]) {
      ++stats_[l].tower_rounds;
      ++stats_[l].tower_formations;
      prev_had_tower_[l] = 1;
    }
  }

  if (options_.record_trace) {
    traces_.resize(batch_);
    record_scratch_.resize(batch_);
    for (std::uint32_t r = 0; r < batch_; ++r) {
      traces_[r] = std::make_unique<Trace>(ring_, snapshot(r));
    }
  }

  // Zero-horizon replicas are done before the first step.
  retire_finished();
}

void BatchEngine::init_replica(std::uint32_t lane, BatchReplica& replica) {
  PEF_CHECK(replica.algorithm != nullptr);
  const auto kernel = replica.algorithm->kernel();
  PEF_CHECK_MSG(kernel.has_value() && kernel->id == kernel_id_,
                "every replica of a batch must run the same KernelId");
  PEF_CHECK_MSG(replica.placements.size() == robots_,
                "every replica of a batch must place the same robot count");
  PEF_CHECK_MSG(
      replica.horizon < std::numeric_limits<std::uint32_t>::max(),
      "batch horizons must fit 32 bits (the visit cells store u32 times)");

  switch (model_) {
    case ExecutionModel::kFsync:
      PEF_CHECK(replica.adversary != nullptr);
      PEF_CHECK(replica.adversary->ring() == ring_);
      break;
    case ExecutionModel::kSsync:
      PEF_CHECK(replica.ssync_adversary != nullptr);
      PEF_CHECK(replica.ssync_adversary->ring() == ring_);
      PEF_CHECK(replica.activation != nullptr);
      break;
    case ExecutionModel::kAsync:
      PEF_CHECK(replica.ssync_adversary != nullptr);
      PEF_CHECK(replica.ssync_adversary->ring() == ring_);
      PEF_CHECK(replica.phases != nullptr);
      break;
  }

  if (options_.enforce_well_initiated) {
    PEF_CHECK_MSG(replica.placements.size() < nodes_,
                  "well-initiated executions need k < n");
    for (std::size_t a = 0; a < replica.placements.size(); ++a) {
      for (std::size_t b = a + 1; b < replica.placements.size(); ++b) {
        PEF_CHECK_MSG(replica.placements[a].node != replica.placements[b].node,
                      "well-initiated executions start towerless");
      }
    }
  }

  algorithms_[lane] = replica.algorithm;
  specs_[lane] = *kernel;
  adversaries_[lane] = std::move(replica.adversary);
  ssync_advs_[lane] = std::move(replica.ssync_adversary);
  activations_[lane] = std::move(replica.activation);
  phase_schedulers_[lane] = std::move(replica.phases);
  horizons_[lane] = replica.horizon;

  for (std::uint32_t i = 0; i < robots_; ++i) {
    const RobotPlacement& p = replica.placements[i];
    PEF_CHECK(ring_.is_valid_node(p.node));
    const std::size_t at = std::size_t{i} * batch_ + lane;
    node_[at] = p.node;
    dir_[at] = static_cast<std::uint8_t>(LocalDirection::kLeft);
    right_cw_[at] = p.chirality.right_is_clockwise() ? 1 : 0;
    init_kernel_state(
        specs_[lane], static_cast<RobotId>(i),
        KernelStateRef{
            krng_[kernel_id_ == KernelId::kRandomWalk ? at : 0],
            kcounter_[at], khas_moved_[at]});
  }

  edges_[lane] = EdgeSet(edge_count_);
  masks_[lane].assign(robots_, 0);
  moving_[lane].assign(robots_, 0);

  if (model_ == ExecutionModel::kFsync) {
    // Mirror Engine's FSYNC fast paths: oblivious adversaries are pure
    // functions of time (no gamma mirror); time-invariant schedules are
    // filled once, here, and never refilled.
    if (const auto* oblivious = dynamic_cast<const ObliviousAdversary*>(
            adversaries_[lane].get())) {
      schedules_[lane] = oblivious->schedule().get();
      if (schedules_[lane]->time_invariant()) {
        refill_[lane] = 0;
        schedules_[lane]->edges_into(0, edges_[lane]);
        edges_full_[lane] = edges_[lane].full() ? 1 : 0;
        edge_words_[lane] = edges_[lane].words();
      }
    } else {
      mirrors_[lane] = std::make_unique<Configuration>(snapshot_lane(lane));
    }
  } else {
    // Policies and SSYNC/ASYNC adversaries see gamma every round.
    mirrors_[lane] = std::make_unique<Configuration>(snapshot_lane(lane));
  }
}

void BatchEngine::recompute_multiplicity() {
  if (stamped_mult_) {
    recompute_multiplicity_stamped();
    return;
  }
  // Replica-wide, gather-free: robot i's multiplicity bit in replica l is
  // "node row i agrees with some other node row at column l"; a replica
  // holds a tower iff any robot sees multiplicity.  Deliberately O(k^2)
  // per lane: for moderate k this beats maintaining an occupancy
  // histogram, whose per-robot scattered updates defeat the replica-stride
  // layout (the stamp path above covers the narrow-batch / huge-k
  // regimes).
  compute_multiplicity_rows(node_.data(), mult_.data(), tower_flag_.data(),
                            robots_, batch_, active_);
}

void BatchEngine::recompute_multiplicity_stamped() {
  const std::uint32_t live = active_;
  const std::uint32_t stride = batch_;
  const std::uint32_t k = robots_;
  const std::uint32_t n = nodes_;
  const std::uint32_t epoch = ++mult_epoch_;
  const NodeId* const node = node_.data();
  std::uint8_t* const mult = mult_.data();

  // O(k) per lane: stamp each occupied (lane, node) cell with this
  // boundary's epoch and count occupants, then read each robot's count
  // back.  Scattered, so only selected (at construction) when the batch is
  // too narrow to amortize row compares or k^2 is prohibitive.
  for (std::uint32_t i = 0; i < k; ++i) {
    const std::size_t base = std::size_t{i} * stride;
    for (std::uint32_t l = 0; l < live; ++l) {
      const std::size_t at = std::size_t{l} * n + node[base + l];
      if (stamp_epoch_[at] == epoch) {
        ++stamp_count_[at];
      } else {
        stamp_epoch_[at] = epoch;
        stamp_count_[at] = 1;
      }
    }
  }
  for (std::uint32_t l = 0; l < live; ++l) tower_flag_[l] = 0;
  for (std::uint32_t i = 0; i < k; ++i) {
    const std::size_t base = std::size_t{i} * stride;
    for (std::uint32_t l = 0; l < live; ++l) {
      const std::size_t at = std::size_t{l} * n + node[base + l];
      const std::uint8_t m = stamp_count_[at] > 1 ? 1 : 0;
      mult[base + l] = m;
      tower_flag_[l] |= m;
    }
  }
}

void BatchEngine::observe_boundary(Time t) {
  const std::uint32_t live = active_;
  const std::uint32_t stride = batch_;
  const std::uint32_t k = robots_;
  const std::uint32_t n = nodes_;
  const NodeId* const node = node_.data();
  const auto t32 = static_cast<std::uint32_t>(t);
  // Lane-major: each lane's visit row stays hot for its k cell updates and
  // the per-lane aggregates (gap maximum, cover bookkeeping) live in
  // registers across the robot loop.  Within a lane robots are processed
  // in index order, exactly like Engine::observe_boundary.
  for (std::uint32_t l = 0; l < live; ++l) {
    VisitCell* const row = visits_.data() + std::size_t{l} * n;
    EngineStats& st = stats_[l];
    Time max_gap = max_closed_gap_[l];
    for (std::uint32_t i = 0; i < k; ++i) {
      const NodeId u = node[std::size_t{i} * stride + l];
      VisitCell& cell = row[u];
      if (cell.count != 0) {
        const Time gap = t - cell.last;
        if (gap > max_gap) max_gap = gap;
      } else {
        if (++st.visited_node_count == n && !st.cover_time) {
          st.cover_time = t;
        }
      }
      ++cell.count;
      cell.last = t32;
    }
    max_closed_gap_[l] = max_gap;
  }
}

void BatchEngine::step() {
  PEF_CHECK_MSG(active_ > 0, "every replica already reached its horizon");
  const bool tracing = !traces_.empty();
  switch (model_) {
    case ExecutionModel::kFsync:
      step_fsync();
      break;
    case ExecutionModel::kSsync:
      step_ssync();
      break;
    case ExecutionModel::kAsync:
      step_async();
      break;
  }
  recompute_multiplicity();  // boundary t+1: Look inputs for the next round
  observe_boundary(now_ + 1);
  update_mirrors();
  if (tracing) end_trace_round();
  finish_round();
  ++now_;
  retire_finished();
}

void BatchEngine::run_all() {
  while (active_ > 0) step();
}

void BatchEngine::step_fsync() {
  // E_t per live replica.  Time-invariant lanes keep their construction
  // fill; oblivious lanes refill the scratch set in place; adaptive lanes
  // see their gamma mirror.
  for (std::uint32_t l = 0; l < active_; ++l) {
    if (schedules_[l] != nullptr) {
      if (refill_[l]) {
        schedules_[l]->edges_into(now_, edges_[l]);
        edges_full_[l] = edges_[l].full() ? 1 : 0;
        edge_words_[l] = edges_[l].words();
      }
    } else {
      edges_[l] = adversaries_[l]->choose_edges(now_, *mirrors_[l]);
      PEF_CHECK(edges_[l].edge_count() == edge_count_);
      edges_full_[l] = edges_[l].full() ? 1 : 0;
      edge_words_[l] = edges_[l].words();
    }
  }
  if (!traces_.empty()) begin_trace_round();

  bool all_full = true;
  for (std::uint32_t l = 0; l < active_; ++l) {
    all_full = all_full && edges_full_[l] != 0;
  }

  with_kernel_id(kernel_id_, [&]<KernelId Id>() {
    if (all_full) {
      fsync_pass<Id, true>();
    } else {
      fsync_pass<Id, false>();
    }
  });
}

template <KernelId Id, bool AllFull>
void BatchEngine::fsync_pass() {
  FsyncPassArgs args;
  args.live = active_;
  args.stride = batch_;
  args.k = robots_;
  args.n = nodes_;
  args.node = node_.data();
  args.dir = dir_.data();
  args.cw = right_cw_.data();
  args.mult = mult_.data();
  args.krng = krng_.data();
  args.kcounter = kcounter_.data();
  args.khas_moved = khas_moved_.data();
  args.spec = specs_.data();
  args.ew = edge_words_.data();
  args.moves = moves_.data();
  fsync_pass_run<Id, AllFull>(args);
}

void BatchEngine::step_ssync() {
  for (std::uint32_t l = 0; l < active_; ++l) {
    activations_[l]->activate(now_, *mirrors_[l], masks_[l]);
    PEF_CHECK(masks_[l].size() == robots_);
    ssync_advs_[l]->choose_edges_into(now_, *mirrors_[l], masks_[l],
                                      edges_[l]);
    PEF_CHECK(edges_[l].edge_count() == edge_count_);
    edge_words_[l] = edges_[l].words();
  }
  if (!traces_.empty()) begin_trace_round();

  with_kernel_id(kernel_id_, [&]<KernelId Id>() { ssync_pass<Id>(); });
}

template <KernelId Id>
void BatchEngine::ssync_pass() {
  const std::uint32_t live = active_;
  const std::uint32_t stride = batch_;
  const std::uint32_t k = robots_;
  const std::uint32_t n = nodes_;
  NodeId* const node = node_.data();
  std::uint8_t* const dir = dir_.data();
  const std::uint8_t* const cw = right_cw_.data();
  const std::uint8_t* const mult = mult_.data();
  Xoshiro256* const krng = krng_.data();
  std::uint64_t* const kcounter = kcounter_.data();
  std::uint8_t* const khas_moved = khas_moved_.data();
  const KernelSpec* const spec = specs_.data();
  const std::uint64_t* const* const ew = edge_words_.data();
  const ActivationMask* const masks = masks_.data();

  // Fused L-C-M for each replica's activated subset (sound for the same
  // reason as FSYNC: Look inputs are frozen for the round).
  for (std::uint32_t i = 0; i < k; ++i) {
    const std::size_t base = std::size_t{i} * stride;
    for (std::uint32_t l = 0; l < live; ++l) {
      if (masks[l][i] == 0) continue;
      const std::size_t at = base + l;
      const NodeId u = node[at];
      const bool ahead_cw = dir[at] == cw[at];
      const auto [ahead, behind] = adjacent_edges(u, ahead_cw, n);
      const std::uint64_t* const words = ew[l];
      View view;
      view.exists_edge_ahead = edge_present(words, ahead);
      view.exists_edge_behind = edge_present(words, behind);
      view.other_robots_on_node = mult[at] != 0;
      auto d = static_cast<LocalDirection>(dir[at]);
      kernel_compute<Id>(spec[l], view, d,
                         kernel_state_at<Id>(krng, kcounter, khas_moved, at));
      dir[at] = static_cast<std::uint8_t>(d);

      const bool move_cw = static_cast<std::uint8_t>(d) == cw[at];
      if (edge_present(words, adjacent_edges(u, move_cw, n).first)) {
        node[at] = step_node(u, move_cw, n);
        ++moves_[l];
      }
    }
  }
}

void BatchEngine::step_async() {
  for (std::uint32_t l = 0; l < active_; ++l) {
    for (std::uint32_t i = 0; i < robots_; ++i) {
      phase_scratch_[i] =
          static_cast<Phase>(phases_[std::size_t{i} * batch_ + l]);
    }
    phase_schedulers_[l]->advance(now_, *mirrors_[l], phase_scratch_,
                                  masks_[l]);
    PEF_CHECK(masks_[l].size() == robots_);
    ActivationMask& moving = moving_[l];
    moving.assign(robots_, 0);
    for (std::uint32_t i = 0; i < robots_; ++i) {
      moving[i] =
          (masks_[l][i] != 0 && phase_scratch_[i] == Phase::kMove) ? 1 : 0;
    }
    ssync_advs_[l]->choose_edges_into(now_, *mirrors_[l], moving, edges_[l]);
    PEF_CHECK(edges_[l].edge_count() == edge_count_);
    edge_words_[l] = edges_[l].words();
  }
  if (!traces_.empty()) begin_trace_round();

  with_kernel_id(kernel_id_, [&]<KernelId Id>() { async_pass<Id>(); });
}

template <KernelId Id>
void BatchEngine::async_pass() {
  const std::uint32_t live = active_;
  const std::uint32_t stride = batch_;
  const std::uint32_t k = robots_;
  const std::uint32_t n = nodes_;
  NodeId* const node = node_.data();
  std::uint8_t* const dir = dir_.data();
  const std::uint8_t* const cw = right_cw_.data();
  const std::uint8_t* const mult = mult_.data();
  Xoshiro256* const krng = krng_.data();
  std::uint64_t* const kcounter = kcounter_.data();
  std::uint8_t* const khas_moved = khas_moved_.data();
  const KernelSpec* const spec = specs_.data();
  const std::uint64_t* const* const ew = edge_words_.data();
  const ActivationMask* const masks = masks_.data();
  const ActivationMask* const moving = moving_.data();
  std::uint8_t* const phase = phases_.data();
  View* const pending = pending_views_.data();

  // One pass: an advancing robot executes exactly one of Look / Compute /
  // Move this tick, and lookers and movers are disjoint, so fusing keeps
  // Engine's two-pass semantics (Looks read the tick-start configuration:
  // the multiplicity plane is frozen, E_t is frozen, and no looker's node
  // changes).
  for (std::uint32_t i = 0; i < k; ++i) {
    const std::size_t base = std::size_t{i} * stride;
    for (std::uint32_t l = 0; l < live; ++l) {
      if (masks[l][i] == 0) continue;
      const std::size_t at = base + l;
      if (moving[l][i] != 0) {
        const NodeId u = node[at];
        const bool move_cw = dir[at] == cw[at];
        if (edge_present(ew[l], adjacent_edges(u, move_cw, n).first)) {
          node[at] = step_node(u, move_cw, n);
          ++moves_[l];
        }
        phase[at] = static_cast<std::uint8_t>(Phase::kLook);
      } else if (phase[at] == static_cast<std::uint8_t>(Phase::kLook)) {
        // Snapshot against the CURRENT edge set and configuration; the
        // view may be stale by the time Compute / Move execute.
        const NodeId u = node[at];
        const bool ahead_cw = dir[at] == cw[at];
        const auto [ahead, behind] = adjacent_edges(u, ahead_cw, n);
        const std::uint64_t* const words = ew[l];
        View view;
        view.exists_edge_ahead = edge_present(words, ahead);
        view.exists_edge_behind = edge_present(words, behind);
        view.other_robots_on_node = mult[at] != 0;
        pending[at] = view;
        phase[at] = static_cast<std::uint8_t>(Phase::kCompute);
      } else {  // Phase::kCompute
        auto d = static_cast<LocalDirection>(dir[at]);
        kernel_compute<Id>(
            spec[l], pending[at], d,
            kernel_state_at<Id>(krng, kcounter, khas_moved, at));
        dir[at] = static_cast<std::uint8_t>(d);
        phase[at] = static_cast<std::uint8_t>(Phase::kMove);
      }
    }
  }
}

void BatchEngine::update_mirrors() {
  // Lanes with a gamma mirror get it refreshed from the planes; dirs and
  // positions that did not change are no-op writes (relocate_robot
  // self-checks), so one uniform pass is correct for every model.
  for (std::uint32_t l = 0; l < active_; ++l) {
    Configuration* const mirror = mirrors_[l].get();
    if (mirror == nullptr) continue;
    for (std::uint32_t i = 0; i < robots_; ++i) {
      const std::size_t at = std::size_t{i} * batch_ + l;
      mirror->set_robot_dir(i, static_cast<LocalDirection>(dir_[at]));
      mirror->relocate_robot(i, node_[at]);
    }
  }
}

void BatchEngine::finish_round() {
  const Time t1 = now_ + 1;
  for (std::uint32_t l = 0; l < active_; ++l) {
    stats_[l].rounds = t1;
    stats_[l].total_moves = moves_[l];
    if (tower_flag_[l]) {
      ++stats_[l].tower_rounds;
      if (!prev_had_tower_[l]) ++stats_[l].tower_formations;
      prev_had_tower_[l] = 1;
    } else {
      prev_had_tower_[l] = 0;
    }
  }
}

void BatchEngine::retire_finished() {
  for (std::uint32_t l = active_; l-- > 0;) {
    if (stats_[l].rounds >= horizons_[l]) {
      const std::uint32_t last = --active_;
      if (l != last) swap_lanes(l, last);
    }
  }
}

void BatchEngine::swap_lanes(std::uint32_t a, std::uint32_t b) {
  using std::swap;
  for (std::uint32_t i = 0; i < robots_; ++i) {
    const std::size_t pa = std::size_t{i} * batch_ + a;
    const std::size_t pb = std::size_t{i} * batch_ + b;
    swap(node_[pa], node_[pb]);
    swap(dir_[pa], dir_[pb]);
    swap(right_cw_[pa], right_cw_[pb]);
    swap(mult_[pa], mult_[pb]);
    swap(kcounter_[pa], kcounter_[pb]);
    swap(khas_moved_[pa], khas_moved_[pb]);
    if (kernel_id_ == KernelId::kRandomWalk) swap(krng_[pa], krng_[pb]);
    if (model_ == ExecutionModel::kAsync) {
      swap(phases_[pa], phases_[pb]);
      swap(pending_views_[pa], pending_views_[pb]);
    }
  }
  const std::size_t ra = std::size_t{a} * nodes_;
  const std::size_t rb = std::size_t{b} * nodes_;
  std::swap_ranges(visits_.begin() + ra, visits_.begin() + ra + nodes_,
                   visits_.begin() + rb);
  if (stamped_mult_) {
    std::swap_ranges(stamp_epoch_.begin() + ra,
                     stamp_epoch_.begin() + ra + nodes_,
                     stamp_epoch_.begin() + rb);
    std::swap_ranges(stamp_count_.begin() + ra,
                     stamp_count_.begin() + ra + nodes_,
                     stamp_count_.begin() + rb);
  }

  swap(algorithms_[a], algorithms_[b]);
  swap(specs_[a], specs_[b]);
  swap(adversaries_[a], adversaries_[b]);
  swap(ssync_advs_[a], ssync_advs_[b]);
  swap(activations_[a], activations_[b]);
  swap(phase_schedulers_[a], phase_schedulers_[b]);
  swap(schedules_[a], schedules_[b]);
  swap(mirrors_[a], mirrors_[b]);
  swap(horizons_[a], horizons_[b]);
  swap(edges_[a], edges_[b]);
  swap(edge_words_[a], edge_words_[b]);
  swap(refill_[a], refill_[b]);
  swap(edges_full_[a], edges_full_[b]);
  swap(masks_[a], masks_[b]);
  swap(moving_[a], moving_[b]);
  swap(moves_[a], moves_[b]);
  swap(tower_flag_[a], tower_flag_[b]);
  swap(prev_had_tower_[a], prev_had_tower_[b]);
  swap(max_closed_gap_[a], max_closed_gap_[b]);
  swap(stats_[a], stats_[b]);

  const std::uint32_t replica_a = replica_of_lane_[a];
  const std::uint32_t replica_b = replica_of_lane_[b];
  replica_of_lane_[a] = replica_b;
  replica_of_lane_[b] = replica_a;
  lane_of_replica_[replica_a] = b;
  lane_of_replica_[replica_b] = a;
}

// ---------------------------------------------------------------------------
// Trace reconstruction (cold path).

void BatchEngine::begin_trace_round() {
  for (std::uint32_t l = 0; l < active_; ++l) {
    RoundRecord& record = record_scratch_[l];
    record.time = now_;
    record.edges = edges_[l];
    record.robots.assign(robots_, RobotRoundRecord{});
    for (std::uint32_t i = 0; i < robots_; ++i) {
      const std::size_t at = std::size_t{i} * batch_ + l;
      RobotRoundRecord& r = record.robots[i];
      r.node_before = node_[at];
      r.node_after = node_[at];
      r.dir_before = static_cast<LocalDirection>(dir_[at]);
      r.dir_after = r.dir_before;
      // The multiplicity bit of every Look fired this round is
      // reconstructable up front: all Looks read the start-of-round
      // multiplicity plane.  Which robots Look depends on the model.
      bool looks = false;
      switch (model_) {
        case ExecutionModel::kFsync:
          looks = true;
          break;
        case ExecutionModel::kSsync:
          looks = masks_[l][i] != 0;
          break;
        case ExecutionModel::kAsync:
          looks = masks_[l][i] != 0 && moving_[l][i] == 0 &&
                  phases_[at] == static_cast<std::uint8_t>(Phase::kLook);
          break;
      }
      if (looks) {
        r.saw_other_robots = mult_[at] != 0;
      }
    }
  }
}

void BatchEngine::end_trace_round() {
  for (std::uint32_t l = 0; l < active_; ++l) {
    RoundRecord& record = record_scratch_[l];
    for (std::uint32_t i = 0; i < robots_; ++i) {
      const std::size_t at = std::size_t{i} * batch_ + l;
      RobotRoundRecord& r = record.robots[i];
      r.dir_after = static_cast<LocalDirection>(dir_[at]);
      r.node_after = node_[at];
      // One Move crosses exactly one edge, so on a ring (n >= 2) a robot
      // moved iff its node changed.
      r.moved = r.node_after != r.node_before;
    }
    traces_[replica_of_lane_[l]]->append(record);
  }
}

// ---------------------------------------------------------------------------
// Per-replica results.

const EngineStats& BatchEngine::stats(std::uint32_t replica) const {
  PEF_CHECK(replica < batch_);
  return stats_[lane_of_replica_[replica]];
}

CoverageReport BatchEngine::coverage_report(std::uint32_t replica,
                                            Time suffix_window) const {
  PEF_CHECK(replica < batch_);
  const std::uint32_t l = lane_of_replica_[replica];
  const Time local_now = stats_[l].rounds;
  const std::size_t row = std::size_t{l} * nodes_;

  CoverageReport report;
  report.horizon = local_now;
  report.suffix_window =
      suffix_window == 0 ? local_now / 4 + 1 : suffix_window;
  report.visit_counts.resize(nodes_);
  for (NodeId u = 0; u < nodes_; ++u) {
    report.visit_counts[u] = visits_[row + u].count;
  }
  report.visited_node_count = stats_[l].visited_node_count;
  report.cover_time = stats_[l].cover_time;
  report.max_closed_gap = max_closed_gap_[l];

  const Time suffix_start =
      local_now >= report.suffix_window ? local_now - report.suffix_window : 0;
  for (NodeId u = 0; u < nodes_; ++u) {
    const VisitCell& cell = visits_[row + u];
    const Time open_gap = cell.count != 0 ? local_now - cell.last : local_now;
    report.max_revisit_gap =
        std::max({report.max_revisit_gap, report.max_closed_gap, open_gap});
    if (cell.count != 0 && cell.last >= suffix_start) {
      ++report.nodes_visited_in_suffix;
    }
  }
  return report;
}

NodeId BatchEngine::robot_node(std::uint32_t replica, RobotId r) const {
  PEF_CHECK(replica < batch_ && r < robots_);
  return node_[std::size_t{r} * batch_ + lane_of_replica_[replica]];
}

Configuration BatchEngine::snapshot(std::uint32_t replica) const {
  PEF_CHECK(replica < batch_);
  return snapshot_lane(lane_of_replica_[replica]);
}

Configuration BatchEngine::snapshot_lane(std::uint32_t lane) const {
  std::vector<RobotSnapshot> snaps;
  snaps.reserve(robots_);
  for (std::uint32_t i = 0; i < robots_; ++i) {
    const std::size_t at = std::size_t{i} * batch_ + lane;
    RobotSnapshot s;
    s.node = node_[at];
    s.dir = static_cast<LocalDirection>(dir_[at]);
    s.chirality = Chirality(right_cw_[at] != 0);
    snaps.push_back(std::move(s));
  }
  return Configuration(ring_, std::move(snaps));
}

const Trace& BatchEngine::trace(std::uint32_t replica) const {
  PEF_CHECK(replica < batch_);
  PEF_CHECK_MSG(!traces_.empty(),
                "trace() requires BatchEngineOptions::record_trace");
  return *traces_[replica];
}

}  // namespace pef
