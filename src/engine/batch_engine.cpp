#include "engine/batch_engine.hpp"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <utility>

#if defined(__x86_64__) && defined(__GNUC__) && !defined(__clang__)
#include <immintrin.h>
#endif

#include "scheduler/async.hpp"
#include "scheduler/ssync.hpp"

#include "algorithms/kernels.hpp"
#include "common/check.hpp"

namespace pef {
namespace {

// ---------------------------------------------------------------------------
// ISA dispatch
//
// The hot kernels (row-compare multiplicity, the fused FSYNC pass) are
// compiled three times — portable, AVX2, AVX-512 — from one always_inline
// body, and a wrapper picks the widest tier the CPU supports once per
// process (__builtin_cpu_supports).  Explicit wrappers instead of
// target_clones because (a) target_clones does not apply to the templated
// pass, and (b) the PEF_BATCH_ISA escape hatch must reach every kernel:
// PEF_BATCH_ISA=portable|avx2|avx512 CLAMPS the tier (never raises it past
// what the CPU has), which is how the differential tests pin every tier to
// identical results and how CI exercises the dispatch on runners whose ISA
// is unknown.  All tiers compute the same integer arithmetic, so the tier
// choice can never change results — only how fast they appear.

enum class BatchIsa : std::uint8_t { kPortable = 0, kAvx2 = 1, kAvx512 = 2 };

#if defined(__x86_64__) && defined(__GNUC__) && !defined(__clang__)
#define PEF_BATCH_HAS_ISA_WRAPPERS 1
// The full Skylake-and-later server subset the kernels want: f/bw/dq/vl
// covers 512-bit u32 compares, byte-plane blends and 256/128-bit tails.
#define PEF_BATCH_AVX512_TARGET "avx512f,avx512bw,avx512dq,avx512vl"
#endif

[[nodiscard]] BatchIsa detect_batch_isa() {
#ifdef PEF_BATCH_HAS_ISA_WRAPPERS
  BatchIsa best = BatchIsa::kPortable;
  if (__builtin_cpu_supports("avx2")) best = BatchIsa::kAvx2;
  if (__builtin_cpu_supports("avx512f") &&
      __builtin_cpu_supports("avx512bw") &&
      __builtin_cpu_supports("avx512dq") &&
      __builtin_cpu_supports("avx512vl")) {
    best = BatchIsa::kAvx512;
  }
  if (const char* env = std::getenv("PEF_BATCH_ISA")) {
    BatchIsa cap = best;
    if (std::strcmp(env, "portable") == 0) cap = BatchIsa::kPortable;
    if (std::strcmp(env, "avx2") == 0) cap = BatchIsa::kAvx2;
    if (std::strcmp(env, "avx512") == 0) cap = BatchIsa::kAvx512;
    if (cap < best) best = cap;  // clamp only — never exceed the hardware
  }
  return best;
#else
  return BatchIsa::kPortable;
#endif
}

[[nodiscard]] BatchIsa active_isa() {
  static const BatchIsa isa = detect_batch_isa();
  return isa;
}

/// The batched form of KernelState: references into the per-field state
/// planes, structurally compatible with kernel_compute / init_kernel_state.
struct KernelStateRef {
  Xoshiro256& rng;
  std::uint64_t& counter;
  std::uint8_t& has_moved;
};

/// Bind robot state at plane offset `at`.  Only random-walk batches carry a
/// real rng plane; every other kernel binds (and never touches) the dummy
/// slot 0.
template <KernelId Id>
[[gnu::always_inline]] inline KernelStateRef kernel_state_at(
    Xoshiro256* rng, std::uint64_t* counter, std::uint8_t* has_moved,
    std::size_t at) {
  if constexpr (Id == KernelId::kRandomWalk) {
    return {rng[at], counter[at], has_moved[at]};
  } else {
    return {rng[0], counter[at], has_moved[at]};
  }
}

// The multiplicity row-compare kernel: for every robot i and live lane l,
// count how many robot rows agree with row i at column l (including i
// itself); multiplicity is count > 1.  This is the single densest loop
// nest of a batch round, so it is shaped for registers: the lane axis is
// processed in compile-time-width chunks (W lanes at a time), which fully
// unrolls the per-chunk loops and promotes both the pivot row and the
// accumulators to vector registers — the j loop then touches memory once
// per row.
template <std::uint32_t W>
[[gnu::always_inline]] inline void mult_chunk(const NodeId* __restrict node,
                                              std::uint8_t* __restrict mult,
                                              std::uint8_t* __restrict tower,
                                              std::uint32_t k,
                                              std::uint32_t stride,
                                              std::uint32_t off) {
  // Two pivot rows per sweep: the j loop's row loads are the kernel's only
  // memory traffic, so sharing each row_j between two accumulating pivots
  // halves it.
  std::uint32_t i = 0;
  for (; i + 2 <= k; i += 2) {
    const NodeId* const __restrict row_a = node + std::size_t{i} * stride + off;
    const NodeId* const __restrict row_b =
        node + std::size_t{i + 1} * stride + off;
    NodeId pivot_a[W];
    NodeId pivot_b[W];
    std::uint32_t cnt_a[W];
    std::uint32_t cnt_b[W];
    for (std::uint32_t l = 0; l < W; ++l) {
      pivot_a[l] = row_a[l];
      pivot_b[l] = row_b[l];
      cnt_a[l] = 0;
      cnt_b[l] = 0;
    }
    for (std::uint32_t j = 0; j < k; ++j) {
      const NodeId* const __restrict row_j =
          node + std::size_t{j} * stride + off;
      for (std::uint32_t l = 0; l < W; ++l) {
        const NodeId v = row_j[l];
        cnt_a[l] += pivot_a[l] == v ? 1 : 0;
        cnt_b[l] += pivot_b[l] == v ? 1 : 0;
      }
    }
    std::uint8_t* const __restrict mult_a = mult + std::size_t{i} * stride + off;
    std::uint8_t* const __restrict mult_b =
        mult + std::size_t{i + 1} * stride + off;
    for (std::uint32_t l = 0; l < W; ++l) {
      const std::uint8_t ma = cnt_a[l] > 1 ? 1 : 0;
      const std::uint8_t mb = cnt_b[l] > 1 ? 1 : 0;
      mult_a[l] = ma;
      mult_b[l] = mb;
      tower[off + l] |= ma | mb;
    }
  }
  for (; i < k; ++i) {
    const NodeId* const __restrict row_i = node + std::size_t{i} * stride + off;
    NodeId pivot[W];
    std::uint32_t cnt[W];
    for (std::uint32_t l = 0; l < W; ++l) {
      pivot[l] = row_i[l];
      cnt[l] = 0;
    }
    for (std::uint32_t j = 0; j < k; ++j) {
      const NodeId* const __restrict row_j =
          node + std::size_t{j} * stride + off;
      for (std::uint32_t l = 0; l < W; ++l) {
        cnt[l] += pivot[l] == row_j[l] ? 1 : 0;
      }
    }
    std::uint8_t* const __restrict mult_i = mult + std::size_t{i} * stride + off;
    for (std::uint32_t l = 0; l < W; ++l) {
      const std::uint8_t m = cnt[l] > 1 ? 1 : 0;
      mult_i[l] = m;
      tower[off + l] |= m;
    }
  }
}

// The driver walks one LANE RANGE [off0, off0+live): callers pass
// plane-base pointers plus the range, so one multiplicity boundary can be
// sliced across worker threads (tower[] here is pre-rebased to the range).
// WMax is the leading chunk width: 16 u32 (two ymm per row) for AVX2 and
// the portable tier, 32 (two zmm) for AVX-512 — one zmm per row leaves the
// compare ports half idle and measured SLOWER than the AVX2 tier.
template <std::uint32_t WMax>
[[gnu::always_inline]] inline void compute_multiplicity_rows_body(
    const NodeId* __restrict node, std::uint8_t* __restrict mult,
    std::uint8_t* __restrict tower, std::uint32_t k, std::uint32_t stride,
    std::uint32_t off0, std::uint32_t live) {
  for (std::uint32_t l = 0; l < live; ++l) tower[l] = 0;
  tower -= off0;  // mult_chunk indexes tower by absolute offset
  std::uint32_t off = off0;
  const std::uint32_t end = off0 + live;
  if constexpr (WMax >= 32) {
    for (; off + 32 <= end; off += 32) {
      mult_chunk<32>(node, mult, tower, k, stride, off);
    }
  }
  for (; off + 16 <= end; off += 16) {
    mult_chunk<16>(node, mult, tower, k, stride, off);
  }
  for (; off + 8 <= end; off += 8) {
    mult_chunk<8>(node, mult, tower, k, stride, off);
  }
  for (; off + 4 <= end; off += 4) {
    mult_chunk<4>(node, mult, tower, k, stride, off);
  }
  for (; off < end; ++off) {
    mult_chunk<1>(node, mult, tower, k, stride, off);
  }
}

#ifdef PEF_BATCH_HAS_ISA_WRAPPERS
__attribute__((target("avx2"))) void compute_multiplicity_rows_avx2(
    const NodeId* __restrict node, std::uint8_t* __restrict mult,
    std::uint8_t* __restrict tower, std::uint32_t k, std::uint32_t stride,
    std::uint32_t off0, std::uint32_t live) {
  compute_multiplicity_rows_body<16>(node, mult, tower, k, stride, off0,
                                     live);
}

// AVX-512 pairwise kernel for k <= 16.  One chunk covers 16 lanes (one zmm
// per robot row), and with k <= 16 ALL robot rows fit in zmm registers at
// once — the pair loop then runs i<j compares with zero memory traffic.
// Each vpcmpeqd yields a 16-bit lane mask which is OR-accumulated for BOTH
// rows of the pair in scalar GPRs; this (a) halves the compares versus the
// count-equal formulation (multiplicity is a bit, not a count), and (b)
// leaves nothing for the compiler to spill — the autovectorized W=32
// counting body loses ~4x to stack traffic on exactly this loop.
template <std::uint32_t KC>
__attribute__((target(PEF_BATCH_AVX512_TARGET))) [[gnu::always_inline]] inline
void mult_pairs_chunk_avx512(const NodeId* __restrict node,
                             std::uint8_t* __restrict mult,
                             std::uint8_t* __restrict tower,
                             std::uint32_t stride, std::uint32_t off,
                             __mmask16 lanes) {
  // Masked-out tail lanes load as zero in every row, so they compare equal
  // everywhere — harmless, because every store below is masked by `lanes`.
  __m512i rows[KC];
  for (std::uint32_t i = 0; i < KC; ++i) {
    rows[i] =
        _mm512_maskz_loadu_epi32(lanes, node + std::size_t{i} * stride + off);
  }
  std::uint32_t acc[KC] = {};
  for (std::uint32_t i = 0; i + 1 < KC; ++i) {
    for (std::uint32_t j = i + 1; j < KC; ++j) {
      const std::uint32_t eq =
          _cvtmask16_u32(_mm512_cmpeq_epi32_mask(rows[i], rows[j]));
      acc[i] |= eq;
      acc[j] |= eq;
    }
  }
  const __m128i ones = _mm_set1_epi8(1);
  std::uint32_t tw = 0;
  for (std::uint32_t i = 0; i < KC; ++i) {
    tw |= acc[i];
    _mm_mask_storeu_epi8(
        mult + std::size_t{i} * stride + off, lanes,
        _mm_maskz_mov_epi8(static_cast<__mmask16>(acc[i]), ones));
  }
  _mm_mask_storeu_epi8(tower + off, lanes,
                       _mm_maskz_mov_epi8(static_cast<__mmask16>(tw), ones));
}

template <std::uint32_t KC>
__attribute__((target(PEF_BATCH_AVX512_TARGET))) void mult_pairs_avx512(
    const NodeId* __restrict node, std::uint8_t* __restrict mult,
    std::uint8_t* __restrict tower, std::uint32_t stride, std::uint32_t off0,
    std::uint32_t live) {
  tower -= off0;  // chunks index tower by absolute offset, like mult_chunk
  std::uint32_t off = off0;
  const std::uint32_t end = off0 + live;
  for (; off + 16 <= end; off += 16) {
    mult_pairs_chunk_avx512<KC>(node, mult, tower, stride, off, 0xffff);
  }
  if (off < end) {
    const __mmask16 tail =
        static_cast<__mmask16>((1u << (end - off)) - 1u);
    mult_pairs_chunk_avx512<KC>(node, mult, tower, stride, off, tail);
  }
}

__attribute__((target(PEF_BATCH_AVX512_TARGET))) void
compute_multiplicity_rows_avx512(const NodeId* __restrict node,
                                 std::uint8_t* __restrict mult,
                                 std::uint8_t* __restrict tower,
                                 std::uint32_t k, std::uint32_t stride,
                                 std::uint32_t off0, std::uint32_t live) {
  switch (k) {
#define PEF_MULT_PAIRS_CASE(KC)                                  \
  case KC:                                                       \
    mult_pairs_avx512<KC>(node, mult, tower, stride, off0, live); \
    return;
    PEF_MULT_PAIRS_CASE(2)
    PEF_MULT_PAIRS_CASE(3)
    PEF_MULT_PAIRS_CASE(4)
    PEF_MULT_PAIRS_CASE(5)
    PEF_MULT_PAIRS_CASE(6)
    PEF_MULT_PAIRS_CASE(7)
    PEF_MULT_PAIRS_CASE(8)
    PEF_MULT_PAIRS_CASE(9)
    PEF_MULT_PAIRS_CASE(10)
    PEF_MULT_PAIRS_CASE(11)
    PEF_MULT_PAIRS_CASE(12)
    PEF_MULT_PAIRS_CASE(13)
    PEF_MULT_PAIRS_CASE(14)
    PEF_MULT_PAIRS_CASE(15)
    PEF_MULT_PAIRS_CASE(16)
#undef PEF_MULT_PAIRS_CASE
    case 0:
    case 1: {
      // A lone robot can never stand on a tower.
      for (std::uint32_t i = 0; i < k; ++i) {
        std::memset(mult + std::size_t{i} * stride + off0, 0, live);
      }
      std::memset(tower, 0, live);
      return;
    }
    default:
      compute_multiplicity_rows_body<32>(node, mult, tower, k, stride, off0,
                                         live);
      return;
  }
}
#endif

void compute_multiplicity_rows(const NodeId* __restrict node,
                               std::uint8_t* __restrict mult,
                               std::uint8_t* __restrict tower,
                               std::uint32_t k, std::uint32_t stride,
                               std::uint32_t off0, std::uint32_t live) {
#ifdef PEF_BATCH_HAS_ISA_WRAPPERS
  switch (active_isa()) {
    case BatchIsa::kAvx512:
      compute_multiplicity_rows_avx512(node, mult, tower, k, stride, off0,
                                       live);
      return;
    case BatchIsa::kAvx2:
      compute_multiplicity_rows_avx2(node, mult, tower, k, stride, off0,
                                     live);
      return;
    case BatchIsa::kPortable:
      break;
  }
#endif
  compute_multiplicity_rows_body<16>(node, mult, tower, k, stride, off0,
                                     live);
}

/// The two ring-edge ids adjacent to node `u` in a robot's frame: .first
/// is the pointed (ahead) edge, .second the opposite one.  Single source of
/// the ahead/behind mapping all three batched passes share (edge e joins
/// nodes e and e+1 mod n, so the clockwise edge of u is u itself).
[[gnu::always_inline]] inline std::pair<EdgeId, EdgeId> adjacent_edges(
    NodeId u, bool ahead_cw, std::uint32_t n) {
  const EdgeId edge_cw = u;
  const EdgeId edge_ccw = u == 0 ? n - 1 : u - 1;
  return ahead_cw ? std::pair<EdgeId, EdgeId>{edge_cw, edge_ccw}
                  : std::pair<EdgeId, EdgeId>{edge_ccw, edge_cw};
}

[[gnu::always_inline]] inline bool edge_present(const std::uint64_t* words,
                                                EdgeId e) {
  return (words[e >> 6] >> (e & 63)) & 1ULL;
}

/// The node one step from `u` in the given global direction.
[[gnu::always_inline]] inline NodeId step_node(NodeId u, bool clockwise,
                                               std::uint32_t n) {
  return clockwise ? (u + 1 == n ? 0 : u + 1) : (u == 0 ? n - 1 : u - 1);
}

/// Everything the fused FSYNC pass touches, as raw restrict-able pointers,
/// so the pass can live in free functions compiled per ISA level.  Edge
/// words come as the contiguous plane base + row stride (lane l's row is
/// edges + l * ewpr).  The pass covers the lane range [l0, l1) — one
/// replica block's slice of the planes.
struct FsyncPassArgs {
  std::uint32_t l0 = 0;
  std::uint32_t l1 = 0;
  std::uint32_t stride = 0;
  std::uint32_t k = 0;
  std::uint32_t n = 0;
  NodeId* node = nullptr;
  std::uint8_t* dir = nullptr;
  const std::uint8_t* cw = nullptr;
  const std::uint8_t* mult = nullptr;
  Xoshiro256* krng = nullptr;
  std::uint64_t* kcounter = nullptr;
  std::uint8_t* khas_moved = nullptr;
  const KernelSpec* spec = nullptr;
  const std::uint64_t* edges = nullptr;
  std::uint32_t ewpr = 0;
  std::uint64_t* moves = nullptr;
};

/// With every edge present, a kernel's Compute collapses: the edge tests
/// are constant-true, so the direction update is a pure function of the
/// multiplicity byte and the has_moved byte — straight-line byte-plane
/// arithmetic with no per-lane state loads.  These kernels take the
/// branchless two-loop body below (one byte loop for Compute, one u32
/// loop for Move); oscillating (per-lane period) and random-walk (serial
/// RNG) keep the generic body.
template <KernelId Id>
inline constexpr bool kAllFullBranchless =
    Id == KernelId::kKeepDirection || Id == KernelId::kBounce ||
    Id == KernelId::kPef1 || Id == KernelId::kPef2 ||
    Id == KernelId::kPef3Plus || Id == KernelId::kPef3PlusNoRule2 ||
    Id == KernelId::kPef3PlusNoRule3;

// ONE fused Look+Compute+Move pass, replica-stride inner loop.  Fusing is
// sound because every Look input is frozen for the round: E_t and the
// multiplicity plane never change mid-round, and a robot's Move only
// writes its own node-plane slot.  In the AllFull instantiation the body
// is pure contiguous plane arithmetic — no gathers, no branches — which
// is exactly what the replica axis was laid out for.
template <KernelId Id, bool AllFull>
[[gnu::always_inline]] inline void fsync_pass_body(const FsyncPassArgs& a) {
  const std::uint32_t l0 = a.l0;
  const std::uint32_t l1 = a.l1;
  const std::uint32_t n = a.n;
  NodeId* const __restrict node = a.node;
  std::uint8_t* const __restrict dir = a.dir;
  const std::uint8_t* const __restrict cw = a.cw;
  const std::uint8_t* const __restrict mult = a.mult;
  Xoshiro256* const __restrict krng = a.krng;
  std::uint64_t* const __restrict kcounter = a.kcounter;
  std::uint8_t* const __restrict khas_moved = a.khas_moved;
  const KernelSpec* const __restrict spec = a.spec;
  const std::uint64_t* const __restrict edges = a.edges;
  const std::uint32_t ewpr = a.ewpr;

  if constexpr (AllFull && kAllFullBranchless<Id>) {
    // Branchless form (see kAllFullBranchless).  LocalDirection is {0, 1}
    // with opposite == XOR 1, so "turn iff P" is dir ^= P for a 0/1 byte
    // P, and the keep/bounce/pef1/pef2 rules reduce to no Compute at all
    // (their turn conditions need an absent edge).  Move is one modular
    // step whose direction is a byte compare — the whole robot row is two
    // vectorizable loops over contiguous plane rows.
    for (std::uint32_t i = 0; i < a.k; ++i) {
      const std::size_t base = std::size_t{i} * a.stride;
      std::uint8_t* const __restrict d = dir + base;
      const std::uint8_t* const __restrict m = mult + base;
      std::uint8_t* const __restrict hm = khas_moved + base;
      const std::uint8_t* const __restrict c = cw + base;
      NodeId* const __restrict nd = node + base;
      if constexpr (Id == KernelId::kPef3Plus) {
        for (std::uint32_t l = l0; l < l1; ++l) {
          d[l] ^= static_cast<std::uint8_t>(hm[l] & m[l]);
          hm[l] = 1;
        }
      } else if constexpr (Id == KernelId::kPef3PlusNoRule2) {
        for (std::uint32_t l = l0; l < l1; ++l) {
          d[l] ^= m[l];
          hm[l] = 1;
        }
      } else if constexpr (Id == KernelId::kPef3PlusNoRule3) {
        for (std::uint32_t l = l0; l < l1; ++l) hm[l] = 1;
      }
      for (std::uint32_t l = l0; l < l1; ++l) {
        const NodeId u = nd[l];
        const NodeId up = u + 1 == n ? 0 : u + 1;
        const NodeId dn = u == 0 ? n - 1 : u - 1;
        nd[l] = d[l] == c[l] ? up : dn;
      }
    }
    for (std::uint32_t l = l0; l < l1; ++l) a.moves[l] += a.k;
    return;
  }

  for (std::uint32_t i = 0; i < a.k; ++i) {
    const std::size_t base = std::size_t{i} * a.stride;
    for (std::uint32_t l = l0; l < l1; ++l) {
      const std::size_t at = base + l;
      const NodeId u = node[at];
      View view;
      if constexpr (AllFull) {
        view.exists_edge_ahead = true;
        view.exists_edge_behind = true;
      } else {
        const bool ahead_cw = dir[at] == cw[at];
        const auto [ahead, behind] = adjacent_edges(u, ahead_cw, n);
        const std::uint64_t* const words = edges + std::size_t{l} * ewpr;
        view.exists_edge_ahead = edge_present(words, ahead);
        view.exists_edge_behind = edge_present(words, behind);
      }
      view.other_robots_on_node = mult[at] != 0;
      auto d = static_cast<LocalDirection>(dir[at]);
      kernel_compute<Id>(spec[l], view, d,
                         kernel_state_at<Id>(krng, kcounter, khas_moved, at));
      dir[at] = static_cast<std::uint8_t>(d);

      // Move: cross the pointed edge (in the post-Compute direction) iff
      // present; with a full E_t every robot crosses.
      const bool move_cw = static_cast<std::uint8_t>(d) == cw[at];
      if constexpr (AllFull) {
        node[at] = step_node(u, move_cw, n);
      } else {
        const EdgeId pointed = adjacent_edges(u, move_cw, n).first;
        if (edge_present(edges + std::size_t{l} * ewpr, pointed)) {
          node[at] = step_node(u, move_cw, n);
          ++a.moves[l];
        }
      }
    }
  }
  if constexpr (AllFull) {
    // Every robot of every live replica moved.
    for (std::uint32_t l = l0; l < l1; ++l) a.moves[l] += a.k;
  }
}

// The ISA dispatch mirrors compute_multiplicity_rows; target_clones does
// not apply to templates, so the AVX2/AVX-512 wrappers carry plain target
// attributes (the always_inline body is re-codegenned inside each) and
// fsync_pass_run picks a wrapper via the shared active_isa() tier.
#ifdef PEF_BATCH_HAS_ISA_WRAPPERS
template <KernelId Id, bool AllFull>
__attribute__((target("avx2"))) void fsync_pass_avx2(const FsyncPassArgs& a) {
  fsync_pass_body<Id, AllFull>(a);
}
template <KernelId Id, bool AllFull>
__attribute__((target(PEF_BATCH_AVX512_TARGET))) void fsync_pass_avx512(
    const FsyncPassArgs& a) {
  fsync_pass_body<Id, AllFull>(a);
}
#endif

template <KernelId Id, bool AllFull>
void fsync_pass_run(const FsyncPassArgs& a) {
#ifdef PEF_BATCH_HAS_ISA_WRAPPERS
  switch (active_isa()) {
    case BatchIsa::kAvx512:
      fsync_pass_avx512<Id, AllFull>(a);
      return;
    case BatchIsa::kAvx2:
      fsync_pass_avx2<Id, AllFull>(a);
      return;
    case BatchIsa::kPortable:
      break;
  }
#endif
  fsync_pass_body<Id, AllFull>(a);
}

}  // namespace

// ---------------------------------------------------------------------------
// Adaptive batch sizing (calibrated on BENCH_scaling's batch_throughput
// series; see bench/bench_scaling.cpp and BENCH_scaling.json at the repo
// root for the underlying measurements).

std::uint32_t batch_break_even(ExecutionModel model, std::uint32_t n,
                               std::uint32_t k) {
  (void)n;
  // Below 4 replicas the batch runs the stamped multiplicity path and the
  // solo Engine's incremental occupancy histogram wins (the measured B=1
  // regression was ~0.94x); by B=4 the replica-stride passes amortize on
  // every model.  Huge robot counts push the crossover up: the batch pays
  // O(k^2) row compares where the solo engine pays O(k).
  std::uint32_t base = 4;
  switch (model) {
    case ExecutionModel::kFsync:
      base = 4;
      break;
    case ExecutionModel::kSsync:
    case ExecutionModel::kAsync:
      // Sparse activation keeps per-round batch overhead (mask fill) low
      // but the solo engine is also cheaper per round; same knee.
      base = 4;
      break;
  }
  if (k >= 48) base = 8;  // stamped-multiplicity regime amortizes later
  return base;
}

std::uint32_t preferred_batch_width(ExecutionModel model, std::uint32_t n,
                                    std::uint32_t k) {
  (void)k;
  // The lane-major per-lane footprint is the visit row (8n bytes) plus,
  // off-FSYNC, the occupancy row (4n): cap the batch where those rows
  // stay inside a mid-size L2/L3 budget, and never below the 64-lane
  // block the SIMD passes and the threading slices are built on.
  const std::uint64_t per_lane =
      std::uint64_t{8} * n +
      (model == ExecutionModel::kFsync ? 0 : std::uint64_t{4} * n);
  constexpr std::uint64_t kLaneBudgetBytes = std::uint64_t{8} << 20;
  std::uint32_t width = 256;
  while (width > 64 && std::uint64_t{width} * per_lane > kLaneBudgetBytes) {
    width /= 2;
  }
  return width;
}

BatchPlan plan_batch(ExecutionModel model, std::uint32_t n, std::uint32_t k,
                     std::uint64_t seeds, std::uint32_t max_batch) {
  BatchPlan plan;
  if (seeds < 2 || max_batch == 1) {
    plan.width = 1;
    return plan;
  }
  std::uint64_t width =
      max_batch == 0 ? preferred_batch_width(model, n, k) : max_batch;
  width = std::min<std::uint64_t>(width, seeds);
  if (width < batch_break_even(model, n, k)) {
    plan.width = 1;  // too narrow to amortize: solo Engines win
    return plan;
  }
  plan.width = static_cast<std::uint32_t>(width);
  return plan;
}

void wire_standard_replica(BatchReplica& replica, ExecutionModel model,
                           AdversaryPtr adversary, double activation_p,
                           std::uint64_t seed) {
  switch (model) {
    case ExecutionModel::kFsync:
      replica.adversary = std::move(adversary);
      break;
    case ExecutionModel::kSsync:
      replica.ssync_adversary =
          std::make_unique<SsyncFromFsyncAdversary>(std::move(adversary));
      replica.activation = standard_ssync_activation(activation_p, seed);
      break;
    case ExecutionModel::kAsync:
      replica.ssync_adversary =
          std::make_unique<SsyncFromFsyncAdversary>(std::move(adversary));
      replica.phases = standard_async_phases(activation_p, seed);
      break;
  }
}

BatchEngine::BatchEngine(Ring ring, ExecutionModel model,
                         std::vector<BatchReplica> replicas,
                         BatchEngineOptions options)
    : ring_(ring), model_(model), options_(options) {
  PEF_CHECK_MSG(!replicas.empty(), "a batch needs at least one replica");
  batch_ = static_cast<std::uint32_t>(replicas.size());
  active_ = batch_;
  nodes_ = ring_.node_count();
  edge_count_ = ring_.edge_count();
  robots_ = static_cast<std::uint32_t>(replicas[0].placements.size());
  PEF_CHECK(robots_ >= 1);

  const auto kernel0 = replicas[0].algorithm
                           ? replicas[0].algorithm->kernel()
                           : std::nullopt;
  PEF_CHECK_MSG(kernel0.has_value(),
                "BatchEngine runs the devirtualized kernel path; the "
                "algorithm must provide a kernel");
  kernel_id_ = kernel0->id;

  replica_of_lane_.resize(batch_);
  lane_of_replica_.resize(batch_);
  algorithms_.resize(batch_);
  specs_.resize(batch_);
  adversaries_.resize(batch_);
  ssync_advs_.resize(batch_);
  activations_.resize(batch_);
  phase_schedulers_.resize(batch_);
  schedules_.assign(batch_, nullptr);
  mirrors_.resize(batch_);
  horizons_.resize(batch_);

  const std::size_t plane = std::size_t{robots_} * batch_;
  node_.assign(plane, 0);
  dir_.assign(plane, static_cast<std::uint8_t>(LocalDirection::kLeft));
  right_cw_.assign(plane, 0);
  mult_.assign(plane, 0);
  kcounter_.assign(plane, 0);
  khas_moved_.assign(plane, 0);
  krng_.assign(kernel_id_ == KernelId::kRandomWalk ? plane : 1,
               Xoshiro256(0));
  if (model_ == ExecutionModel::kAsync) {
    pending_views_.assign(plane, View{});
  }

  visits_.assign(std::size_t{batch_} * nodes_, VisitCell{});

  // Intra-cell threading: resolve the requested thread count against the
  // machine (0 = one per physical core) and spin up the pinned team only
  // when the batch is wide enough to slice into 2+ 64-lane blocks — a
  // narrow batch would just pay barrier costs.
  threads_ = options_.threads;
  if (threads_ == 0) threads_ = HwTopology::detect().physical_cores;
  if (threads_ > 1 && batch_ > 64) {
    const std::uint32_t blocks = (batch_ + 63) / 64;
    team_ = std::make_unique<WorkerTeam>(std::min(threads_, blocks));
  }

  // Multiplicity path selection (see recompute_multiplicity): row compares
  // need enough replicas to amortize and O(k^2) work a moderate k.  Wide
  // batches push the crossover out — with 16 lanes per vector compare the
  // row sweep stays cheap to larger k than the narrow-batch tuning
  // assumed.
  const std::uint32_t compare_max_k = batch_ >= 64 ? 64 : 48;
  stamped_mult_ = batch_ < 4 || robots_ >= compare_max_k;
  if (stamped_mult_) {
    stamp_epoch_.assign(std::size_t{batch_} * nodes_, 0);
    stamp_count_.assign(std::size_t{batch_} * nodes_, 0);
  }

  // Replica-block tile width for the tiled run_all: the lane-major rows a
  // round walks per lane (visit cells, plus occupancy off-FSYNC, plus the
  // stamp rows when the stamp multiplicity path is on) should stay
  // L2-resident across a whole epoch of rounds.  Budget ~1.5 MiB of a
  // nominal 2 MiB L2; never below the 64-lane block everything else is
  // built on.
  {
    const std::uint64_t per_lane =
        std::uint64_t{8} * nodes_ +
        (model_ != ExecutionModel::kFsync ? std::uint64_t{4} * nodes_ : 0) +
        (stamped_mult_ ? std::uint64_t{8} * nodes_ : 0);
    constexpr std::uint64_t kTileBudgetBytes = std::uint64_t{3} << 19;
    std::uint32_t tile = (batch_ + 63) / 64 * 64;
    while (tile > 64 && std::uint64_t{tile} * per_lane > kTileBudgetBytes) {
      tile /= 2;
      tile = (tile + 63) / 64 * 64;
    }
    tile_lanes_ = tile;
  }

  edge_words_per_row_ = edge_word_count(edge_count_);
  edge_plane_.assign(std::size_t{batch_} * edge_words_per_row_, 0);
  edges_.resize(batch_);
  refill_.assign(batch_, 1);
  edges_full_.assign(batch_, 0);
  moves_.assign(batch_, 0);
  tower_flag_.assign(batch_, 0);
  prev_had_tower_.assign(batch_, 0);
  max_closed_gap_.assign(batch_, 0);
  stats_.assign(batch_, EngineStats{});

  if (model_ != ExecutionModel::kFsync) {
    lane_words_ = (batch_ + 63) / 64;
    const std::size_t mask_plane = std::size_t{robots_} * lane_words_;
    mask_words_.assign(mask_plane, 0);
    if (model_ == ExecutionModel::kAsync) {
      moving_words_.assign(mask_plane, 0);
      // Every robot starts in its Look phase: the look plane carries every
      // lane's bit, the other two start empty.
      look_words_.assign(mask_plane, 0);
      compute_words_.assign(mask_plane, 0);
      move_words_.assign(mask_plane, 0);
      for (std::uint32_t i = 0; i < robots_; ++i) {
        for (std::uint32_t l = 0; l < batch_; ++l) {
          look_words_[std::size_t{i} * lane_words_ + (l >> 6)] |=
              1ULL << (l & 63);
        }
      }
    }
    act_kind_.assign(batch_,
                     static_cast<std::uint8_t>(ActivationBatchKind::kVirtual));
    act_p_.assign(batch_, 0.0);
    act_rng_.assign(batch_, Xoshiro256(0));
    occ_.assign(std::size_t{batch_} * nodes_, 0);
    multi_nodes_.assign(batch_, 0);
    move_log_.resize(std::size_t{robots_} * batch_);
  }

  for (std::uint32_t l = 0; l < batch_; ++l) {
    replica_of_lane_[l] = l;
    lane_of_replica_[l] = l;
    init_replica(l, replicas[l]);
  }

  // With every lane schedule-backed and time-invariant (the static-ring
  // Monte-Carlo case) the per-round edge prologue has nothing to do.
  edge_refill_needed_ = false;
  for (std::uint32_t l = 0; l < batch_; ++l) {
    edge_refill_needed_ =
        edge_refill_needed_ || schedules_[l] == nullptr || refill_[l] != 0;
  }

  ff_init();

  // The t = 0 boundary (Engine::init's observe_boundary(0)), serial —
  // construction is not a hot path.
  recompute_multiplicity(0, active_, 0);
  observe_boundary(0, 0, active_);
  for (std::uint32_t l = 0; l < batch_; ++l) {
    if (tower_flag_[l]) {
      ++stats_[l].tower_rounds;
      ++stats_[l].tower_formations;
      prev_had_tower_[l] = 1;
    }
  }

  if (options_.record_trace) {
    traces_.resize(batch_);
    record_scratch_.resize(batch_);
    for (std::uint32_t r = 0; r < batch_; ++r) {
      traces_[r] = std::make_unique<Trace>(ring_, snapshot(r));
    }
  }

  // Zero-horizon replicas are done before the first step.
  retire_finished();
}

void BatchEngine::init_replica(std::uint32_t lane, BatchReplica& replica) {
  PEF_CHECK(replica.algorithm != nullptr);
  const auto kernel = replica.algorithm->kernel();
  PEF_CHECK_MSG(kernel.has_value() && kernel->id == kernel_id_,
                "every replica of a batch must run the same KernelId");
  PEF_CHECK_MSG(replica.placements.size() == robots_,
                "every replica of a batch must place the same robot count");
  PEF_CHECK_MSG(
      replica.horizon < std::numeric_limits<std::uint32_t>::max(),
      "batch horizons must fit 32 bits (the visit cells store u32 times)");

  switch (model_) {
    case ExecutionModel::kFsync:
      PEF_CHECK(replica.adversary != nullptr);
      PEF_CHECK(replica.adversary->ring() == ring_);
      break;
    case ExecutionModel::kSsync:
      PEF_CHECK(replica.ssync_adversary != nullptr);
      PEF_CHECK(replica.ssync_adversary->ring() == ring_);
      PEF_CHECK(replica.activation != nullptr);
      break;
    case ExecutionModel::kAsync:
      PEF_CHECK(replica.ssync_adversary != nullptr);
      PEF_CHECK(replica.ssync_adversary->ring() == ring_);
      PEF_CHECK(replica.phases != nullptr);
      break;
  }

  if (options_.enforce_well_initiated) {
    PEF_CHECK_MSG(replica.placements.size() < nodes_,
                  "well-initiated executions need k < n");
    for (std::size_t a = 0; a < replica.placements.size(); ++a) {
      for (std::size_t b = a + 1; b < replica.placements.size(); ++b) {
        PEF_CHECK_MSG(replica.placements[a].node != replica.placements[b].node,
                      "well-initiated executions start towerless");
      }
    }
  }

  algorithms_[lane] = replica.algorithm;
  specs_[lane] = *kernel;
  adversaries_[lane] = std::move(replica.adversary);
  ssync_advs_[lane] = std::move(replica.ssync_adversary);
  activations_[lane] = std::move(replica.activation);
  phase_schedulers_[lane] = std::move(replica.phases);
  horizons_[lane] = replica.horizon;

  for (std::uint32_t i = 0; i < robots_; ++i) {
    const RobotPlacement& p = replica.placements[i];
    PEF_CHECK(ring_.is_valid_node(p.node));
    const std::size_t at = std::size_t{i} * batch_ + lane;
    node_[at] = p.node;
    dir_[at] = static_cast<std::uint8_t>(LocalDirection::kLeft);
    right_cw_[at] = p.chirality.right_is_clockwise() ? 1 : 0;
    if (model_ != ExecutionModel::kFsync) {
      if (++occ_[std::size_t{lane} * nodes_ + p.node] == 2) {
        ++multi_nodes_[lane];
      }
    }
    init_kernel_state(
        specs_[lane], static_cast<RobotId>(i),
        KernelStateRef{
            krng_[kernel_id_ == KernelId::kRandomWalk ? at : 0],
            kcounter_[at], khas_moved_[at]});
  }

  // Route the lane's edge sets: schedule-backed lanes fill their plane row
  // in place (time-invariant ones once, here); everything else keeps a
  // per-lane EdgeSet scratch for the virtual adversary.  Mirrors are lazy —
  // materialized below only if something on this lane reads gamma.
  bool needs_mirror = false;
  switch (model_) {
    case ExecutionModel::kFsync: {
      if (const auto* oblivious = dynamic_cast<const ObliviousAdversary*>(
              adversaries_[lane].get())) {
        schedules_[lane] = oblivious->schedule().get();
      } else {
        needs_mirror = true;
      }
      break;
    }
    case ExecutionModel::kSsync:
    case ExecutionModel::kAsync: {
      schedules_[lane] = ssync_advs_[lane]->oblivious_schedule();
      needs_mirror = schedules_[lane] == nullptr;

      // Devirtualize the activation policy / phase scheduler when it
      // advertises a batched kernel; Bernoulli lanes additionally seed
      // their slot of the RNG plane from the policy's own (untouched)
      // stream so the batched draws replay it bit-for-bit.  A policy whose
      // batch_kind() lies about its dynamic type falls back to kVirtual.
      ActivationBatchKind kind = ActivationBatchKind::kVirtual;
      if (model_ == ExecutionModel::kSsync) {
        kind = activations_[lane]->batch_kind();
        if (kind == ActivationBatchKind::kBernoulli) {
          if (const auto* bernoulli = dynamic_cast<const BernoulliActivation*>(
                  activations_[lane].get())) {
            act_p_[lane] = bernoulli->p();
            act_rng_[lane] = bernoulli->rng();
          } else {
            kind = ActivationBatchKind::kVirtual;
          }
        }
      } else {
        kind = phase_schedulers_[lane]->batch_kind();
        if (kind == ActivationBatchKind::kBernoulli) {
          if (const auto* bernoulli = dynamic_cast<const BernoulliPhases*>(
                  phase_schedulers_[lane].get())) {
            act_p_[lane] = bernoulli->p();
            act_rng_[lane] = bernoulli->rng();
          } else {
            kind = ActivationBatchKind::kVirtual;
          }
        }
      }
      act_kind_[lane] = static_cast<std::uint8_t>(kind);
      needs_mirror = needs_mirror || kind == ActivationBatchKind::kVirtual;
      break;
    }
  }

  if (schedules_[lane] != nullptr && schedules_[lane]->time_invariant()) {
    refill_[lane] = 0;
    schedules_[lane]->edges_into_words(0, edge_row(lane));
    edges_full_[lane] =
        edge_words_full(edge_row(lane), edge_count_) ? 1 : 0;
  }
  if (schedules_[lane] == nullptr) {
    edges_[lane] = EdgeSet(edge_count_);
  }
  if (needs_mirror) {
    mirrors_[lane] = std::make_unique<Configuration>(snapshot_lane(lane));
  }
}

template <typename Fn>
void BatchEngine::parallel_lane_slices(Fn&& fn) {
  const std::uint32_t live = active_;
  if (team_ == nullptr || live <= 64) {
    if (live > 0) fn(0u, live);
    return;
  }
  // Whole 64-lane blocks per slice: mask-word ranges stay word-aligned and
  // every byte-plane range starts on a cache line, so two slices never
  // write the same line.  All parallel state is lane-indexed, the slice
  // decomposition is a pure function of (live, slots), and each slice runs
  // its lanes in ascending order — so the threaded round computes exactly
  // the serial round's values in exactly the serial per-lane order.
  const std::uint32_t blocks = (live + 63) / 64;
  const std::uint32_t slots = team_->slots();
  team_->for_each_slot([&](std::uint32_t slot) {
    const std::uint32_t b0 =
        static_cast<std::uint32_t>(std::uint64_t{blocks} * slot / slots);
    const std::uint32_t b1 =
        static_cast<std::uint32_t>(std::uint64_t{blocks} * (slot + 1) / slots);
    const std::uint32_t lo = b0 * 64;
    const std::uint32_t hi = std::min(live, b1 * 64);
    if (lo < hi) fn(lo, hi);
  });
}

void BatchEngine::recompute_multiplicity(std::uint32_t l0, std::uint32_t l1,
                                         Time boundary_t) {
  if (stamped_mult_) {
    recompute_multiplicity_stamped(l0, l1, boundary_t);
    return;
  }
  // Replica-wide, gather-free: robot i's multiplicity bit in replica l is
  // "node row i agrees with some other node row at column l"; a replica
  // holds a tower iff any robot sees multiplicity.  Deliberately O(k^2)
  // per lane: for moderate k this beats maintaining an occupancy
  // histogram, whose per-robot scattered updates defeat the replica-stride
  // layout (the stamp path above covers the narrow-batch / huge-k
  // regimes).
  compute_multiplicity_rows(node_.data(), mult_.data(),
                            tower_flag_.data() + l0, robots_, batch_, l0,
                            l1 - l0);
}

void BatchEngine::recompute_multiplicity_stamped(std::uint32_t l0,
                                                 std::uint32_t l1,
                                                 Time boundary_t) {
  const std::uint32_t stride = batch_;
  const std::uint32_t k = robots_;
  const std::uint32_t n = nodes_;
  // The row epoch is derived from the boundary time, not a shared counter:
  // a lane's boundaries are strictly increasing, its stamp rows travel with
  // it through swap_lanes, rows start at 0, and horizons fit 32 bits (init
  // checks), so epoch values never repeat within a lane and never collide
  // with the zero fill.  Time-derived epochs are what lets tiles and
  // threads run rounds at different times with no cross-range state.
  const auto epoch = static_cast<std::uint32_t>(boundary_t) + 1;
  const NodeId* const node = node_.data();
  std::uint8_t* const mult = mult_.data();

  // O(k) per lane: stamp each occupied (lane, node) cell with this
  // boundary's epoch and count occupants, then read each robot's count
  // back.  Scattered, so only selected (at construction) when the batch is
  // too narrow to amortize row compares or k^2 is prohibitive.
  for (std::uint32_t i = 0; i < k; ++i) {
    const std::size_t base = std::size_t{i} * stride;
    for (std::uint32_t l = l0; l < l1; ++l) {
      const std::size_t at = std::size_t{l} * n + node[base + l];
      if (stamp_epoch_[at] == epoch) {
        ++stamp_count_[at];
      } else {
        stamp_epoch_[at] = epoch;
        stamp_count_[at] = 1;
      }
    }
  }
  for (std::uint32_t l = l0; l < l1; ++l) tower_flag_[l] = 0;
  for (std::uint32_t i = 0; i < k; ++i) {
    const std::size_t base = std::size_t{i} * stride;
    for (std::uint32_t l = l0; l < l1; ++l) {
      const std::size_t at = std::size_t{l} * n + node[base + l];
      const std::uint8_t m = stamp_count_[at] > 1 ? 1 : 0;
      mult[base + l] = m;
      tower_flag_[l] |= m;
    }
  }
}

void BatchEngine::observe_boundary(Time t, std::uint32_t l0,
                                   std::uint32_t l1) {
  const std::uint32_t stride = batch_;
  const std::uint32_t k = robots_;
  const std::uint32_t n = nodes_;
  const NodeId* const node = node_.data();
  const auto t32 = static_cast<std::uint32_t>(t);
  // Lane-major: each lane's visit row stays hot for its k cell updates and
  // the per-lane aggregates (gap maximum, cover bookkeeping) live in
  // registers across the robot loop.  Within a lane robots are processed
  // in index order, exactly like Engine::observe_boundary.  The cell
  // update is branch-free — first-visit handling and the gap maximum fold
  // into selects — because the first-visit and new-max branches flip
  // unpredictably and the mispredicts were costing more than the whole
  // fused pass (the tiled run keeps these rows L2-resident, so the
  // scattered touches themselves are cheap).
  for (std::uint32_t l = l0; l < l1; ++l) {
    VisitCell* const row = visits_.data() + std::size_t{l} * n;
    // Get all k scattered cell lines in flight before the update loop
    // touches any of them: a tile-round touches more lines than L1 holds,
    // so every cell is an L1 miss and the prefetches overlap what would
    // otherwise serialize behind the loop's loads.
    for (std::uint32_t i = 0; i < k; ++i) {
      __builtin_prefetch(row + node[std::size_t{i} * stride + l], 1);
    }
    EngineStats& st = stats_[l];
    // Four interleaved gap maxima: a single accumulator makes the round's
    // k updates one serial compare/select chain; four break it into
    // independent chains the core overlaps with the cell loads.
    Time mg[4] = {max_closed_gap_[l], 0, 0, 0};
    std::uint32_t visited = st.visited_node_count;
    for (std::uint32_t i = 0; i < k; ++i) {
      const NodeId u = node[std::size_t{i} * stride + l];
      VisitCell& cell = row[u];
      const bool first = cell.count == 0;
      const Time gap = first ? 0 : t - cell.last;
      Time& m = mg[i & 3];
      if (gap > m) m = gap;
      visited += first ? 1 : 0;
      ++cell.count;
      cell.last = t32;
    }
    if (visited != st.visited_node_count) {
      st.visited_node_count = visited;
      if (visited == n && !st.cover_time) st.cover_time = t;
    }
    max_closed_gap_[l] =
        std::max(std::max(mg[0], mg[1]), std::max(mg[2], mg[3]));
  }
}

void BatchEngine::step() {
  PEF_CHECK_MSG(active_ > 0, "every replica already reached its horizon");
  const bool tracing = !traces_.empty();
  if (tracing) {
    // Traced rounds keep global per-round barriers: the recorder snapshots
    // every lane's planes between the prologue and the pass.
    switch (model_) {
      case ExecutionModel::kFsync:
        step_fsync();
        break;
      case ExecutionModel::kSsync:
        step_ssync();
        break;
      case ExecutionModel::kAsync:
        step_async();
        break;
    }
    update_mirrors(0, active_);
    end_trace_round();
    finish_round(0, active_, now_ + 1);
  } else {
    // Untraced: one range-local round per slice, no barriers inside.
    with_kernel_id(kernel_id_, [&]<KernelId Id>() {
      parallel_lane_slices([&](std::uint32_t l0, std::uint32_t l1) {
        switch (model_) {
          case ExecutionModel::kFsync:
            fsync_round<Id>(l0, l1, now_);
            break;
          case ExecutionModel::kSsync:
            ssync_round<Id>(l0, l1, now_);
            break;
          case ExecutionModel::kAsync:
            async_round<Id>(l0, l1, now_);
            break;
        }
      });
    });
  }
  ++now_;
  retire_finished();
}

void BatchEngine::run_all() {
  if (!traces_.empty()) {
    while (active_ > 0) step();
    return;
  }
  // Temporal tiling: a round touches every live lane's visit/occupancy
  // rows, and at wide B those rows outgrow L2 — per-round sweeps stream
  // from L3 no matter how good the passes are.  Lanes are fully
  // independent simulations (state, RNG, kernel memory, mirrors, policies,
  // stamp rows are all lane-indexed), so reorder the time loop instead:
  // run each tile of tile_lanes_ lanes through a whole EPOCH of rounds
  // while its rows sit in L2, then move to the next tile.  Per-lane
  // results are bit-identical to the round-major order by construction.
  // Epochs end at the nearest horizon so lane retirement (and the dense
  // live prefix the tiles walk) stays exact.
  constexpr Time kEpochRounds = 64;
  with_kernel_id(kernel_id_, [&]<KernelId Id>() {
    while (active_ > 0) {
      Time span = kEpochRounds;
      for (std::uint32_t l = 0; l < active_; ++l) {
        span = std::min(span, horizons_[l] - now_);
      }
      const Time t0 = now_;
      parallel_lane_slices([&](std::uint32_t l0, std::uint32_t l1) {
        for (std::uint32_t b0 = l0; b0 < l1; b0 += tile_lanes_) {
          const std::uint32_t b1 = std::min(l1, b0 + tile_lanes_);
          for (Time dt = 0; dt < span; ++dt) {
            switch (model_) {
              case ExecutionModel::kFsync:
                fsync_round<Id>(b0, b1, t0 + dt);
                break;
              case ExecutionModel::kSsync:
                ssync_round<Id>(b0, b1, t0 + dt);
                break;
              case ExecutionModel::kAsync:
                async_round<Id>(b0, b1, t0 + dt);
                break;
            }
          }
        }
      });
      now_ += span;
      retire_finished();
    }
  });
}

void BatchEngine::refill_edges(std::uint32_t l0, std::uint32_t l1, Time t) {
  // E_t per lane of [l0, l1), written into the lane's edge-plane row.
  // Time-invariant lanes keep their construction fill; oblivious lanes
  // refill the row in place; adaptive lanes see their gamma mirror (and,
  // off-FSYNC, their own lane's mask column) and copy the resulting set's
  // words over.  The byte-mask scratch is local: a member would be shared
  // across worker slices.
  ActivationMask virt_mask;
  for (std::uint32_t l = l0; l < l1; ++l) {
    if (schedules_[l] != nullptr) {
      if (refill_[l]) {
        schedules_[l]->edges_into_words(t, edge_row(l));
        if (model_ == ExecutionModel::kFsync) {
          edges_full_[l] = edge_words_full(edge_row(l), edge_count_) ? 1 : 0;
        }
      }
      continue;
    }
    switch (model_) {
      case ExecutionModel::kFsync:
        edges_[l] = adversaries_[l]->choose_edges(t, *mirrors_[l]);
        edges_full_[l] = edges_[l].full() ? 1 : 0;
        break;
      case ExecutionModel::kSsync:
        extract_lane_mask(mask_words_.data(), l, virt_mask);
        ssync_advs_[l]->choose_edges_into(t, *mirrors_[l], virt_mask,
                                          edges_[l]);
        break;
      case ExecutionModel::kAsync:
        // The adversary sees which robots fire their Move phase this tick.
        extract_lane_mask(moving_words_.data(), l, virt_mask);
        ssync_advs_[l]->choose_edges_into(t, *mirrors_[l], virt_mask,
                                          edges_[l]);
        break;
    }
    PEF_CHECK(edges_[l].edge_count() == edge_count_);
    std::copy_n(edges_[l].words(), edge_words_per_row_, edge_row(l));
  }
}

void BatchEngine::step_fsync() {
  if (edge_refill_needed_) refill_edges(0, active_, now_);
  begin_trace_round();

  bool all_full = true;
  for (std::uint32_t l = 0; l < active_; ++l) {
    all_full = all_full && edges_full_[l] != 0;
  }

  // One parallel section per round: every slice runs its fused pass, then
  // recomputes its multiplicity columns for boundary t+1, then observes
  // its visit rows — all three sweeps over planes the pass just made hot.
  with_kernel_id(kernel_id_, [&]<KernelId Id>() {
    parallel_lane_slices([&](std::uint32_t l0, std::uint32_t l1) {
      if (all_full) {
        fsync_pass<Id, true>(l0, l1);
      } else {
        fsync_pass<Id, false>(l0, l1);
      }
      recompute_multiplicity(l0, l1, now_ + 1);
      observe_boundary(now_ + 1, l0, l1);
    });
  });
}

template <KernelId Id>
void BatchEngine::fsync_round(std::uint32_t l0, std::uint32_t l1, Time t) {
  if (edge_refill_needed_) refill_edges(l0, l1, t);
  // AllFull is decided per range: a range whose live rows are all full
  // takes the no-edge-test instantiation (which computes the same values
  // the generic body would — the tests are constant-true there).
  bool all_full = true;
  for (std::uint32_t l = l0; l < l1 && all_full; ++l) {
    all_full = edges_full_[l] != 0;
  }
  if (all_full) {
    fsync_pass<Id, true>(l0, l1);
  } else {
    fsync_pass<Id, false>(l0, l1);
  }
  recompute_multiplicity(l0, l1, t + 1);
  observe_boundary(t + 1, l0, l1);
  update_mirrors(l0, l1);
  finish_round(l0, l1, t + 1);
  if (ff_enabled_) ff_observe(l0, l1, t + 1);
}

template <KernelId Id, bool AllFull>
void BatchEngine::fsync_pass(std::uint32_t l0, std::uint32_t l1) {
  FsyncPassArgs args;
  args.l0 = l0;
  args.l1 = l1;
  args.stride = batch_;
  args.k = robots_;
  args.n = nodes_;
  args.node = node_.data();
  args.dir = dir_.data();
  args.cw = right_cw_.data();
  args.mult = mult_.data();
  args.krng = krng_.data();
  args.kcounter = kcounter_.data();
  args.khas_moved = khas_moved_.data();
  args.spec = specs_.data();
  args.edges = edge_plane_.data();
  args.ewpr = edge_words_per_row_;
  args.moves = moves_.data();
  fsync_pass_run<Id, AllFull>(args);
}

void BatchEngine::fill_mask_words(std::uint32_t l0, std::uint32_t l1,
                                  Time t) {
  const std::uint32_t k = robots_;
  const std::uint32_t lw = lane_words_;
  std::uint64_t* const words = mask_words_.data();
  // Clear only this slice's word columns (l0 is 64-aligned, so [w0, w1)
  // covers exactly the slice's bits plus the final word's dead tail).
  const std::uint32_t w0 = l0 >> 6;
  const std::uint32_t w1 = (l1 + 63) >> 6;
  for (std::uint32_t i = 0; i < k; ++i) {
    std::fill(words + std::size_t{i} * lw + w0,
              words + std::size_t{i} * lw + w1, 0);
  }

  // Bernoulli fast path, four lanes at a time: each lane's draws are a
  // serial xoshiro dependency chain, so interleaving four independent
  // chains multiplies the instruction-level parallelism of the fill (draw
  // order WITHIN each lane is unchanged — bit-identity holds, whatever
  // lane grouping a slice boundary induces).  k <= 64 keeps each lane's
  // activation set in one register.
  std::uint32_t l = l0;
  if (k <= 64) {
    const auto bernoulli =
        static_cast<std::uint8_t>(ActivationBatchKind::kBernoulli);
    while (l + 4 <= l1 && act_kind_[l] == bernoulli &&
           act_kind_[l + 1] == bernoulli && act_kind_[l + 2] == bernoulli &&
           act_kind_[l + 3] == bernoulli) {
      Xoshiro256 rng[4] = {act_rng_[l], act_rng_[l + 1], act_rng_[l + 2],
                           act_rng_[l + 3]};
      const double p[4] = {act_p_[l], act_p_[l + 1], act_p_[l + 2],
                           act_p_[l + 3]};
      std::uint64_t bits[4] = {0, 0, 0, 0};
      for (std::uint32_t i = 0; i < k; ++i) {
        bits[0] |= std::uint64_t{rng[0].next_bool(p[0])} << i;
        bits[1] |= std::uint64_t{rng[1].next_bool(p[1])} << i;
        bits[2] |= std::uint64_t{rng[2].next_bool(p[2])} << i;
        bits[3] |= std::uint64_t{rng[3].next_bool(p[3])} << i;
      }
      for (std::uint32_t j = 0; j < 4; ++j) {
        if (bits[j] == 0) bits[j] = 1ULL << rng[j].next_below(k);
        act_rng_[l + j] = rng[j];
        const std::uint32_t word = (l + j) >> 6;
        const std::uint64_t bit = 1ULL << ((l + j) & 63);
        std::uint64_t b = bits[j];
        while (b != 0) {
          const auto i = static_cast<std::uint32_t>(__builtin_ctzll(b));
          b &= b - 1;
          words[std::size_t{i} * lw + word] |= bit;
        }
      }
      l += 4;
    }
  }

  // Per-slice scratch for the virtual policies: members would be shared
  // across the worker slices.  Constructing the vectors is free; they only
  // allocate when a virtual lane actually appears in this slice.
  ActivationMask virt_mask;
  std::vector<Phase> virt_phases;
  for (; l < l1; ++l) {
    const std::uint32_t word = l >> 6;
    const std::uint64_t bit = 1ULL << (l & 63);
    switch (static_cast<ActivationBatchKind>(act_kind_[l])) {
      case ActivationBatchKind::kFull:
        for (std::uint32_t i = 0; i < k; ++i) {
          words[std::size_t{i} * lw + word] |= bit;
        }
        break;
      case ActivationBatchKind::kRoundRobin:
        words[std::size_t{t % k} * lw + word] |= bit;
        break;
      case ActivationBatchKind::kBernoulli: {
        // Draw-for-draw replay of BernoulliActivation::activate /
        // BernoulliPhases::advance: k Bernoulli trials in robot order, then
        // the forced-nonempty fallback from the same stream.  The RNG runs
        // on a LOCAL copy (written back after the lane) and the k <= 64
        // case accumulates into one register: no stores inside the draw
        // loop, so the generator state stays in registers instead of
        // round-tripping memory per draw (the plane stores could alias the
        // rng plane otherwise).
        Xoshiro256 rng = act_rng_[l];
        const double p = act_p_[l];
        if (k <= 64) {
          std::uint64_t robots_bits = 0;
          for (std::uint32_t i = 0; i < k; ++i) {
            robots_bits |= std::uint64_t{rng.next_bool(p)} << i;
          }
          if (robots_bits == 0) robots_bits = 1ULL << rng.next_below(k);
          while (robots_bits != 0) {
            const auto i =
                static_cast<std::uint32_t>(__builtin_ctzll(robots_bits));
            robots_bits &= robots_bits - 1;
            words[std::size_t{i} * lw + word] |= bit;
          }
        } else {
          bool any = false;
          for (std::uint32_t i = 0; i < k; ++i) {
            if (rng.next_bool(p)) {
              words[std::size_t{i} * lw + word] |= bit;
              any = true;
            }
          }
          if (!any) {
            words[std::size_t{rng.next_below(k)} * lw + word] |= bit;
          }
        }
        act_rng_[l] = rng;
        break;
      }
      case ActivationBatchKind::kVirtual: {
        if (model_ == ExecutionModel::kSsync) {
          activations_[l]->activate(t, *mirrors_[l], virt_mask);
        } else {
          // Reconstruct the lane's Phase vector from the one-hot planes
          // for the scheduler's (rarely taken) virtual interface.
          virt_phases.resize(k);
          for (std::uint32_t i = 0; i < k; ++i) {
            const std::size_t at = std::size_t{i} * lw + word;
            virt_phases[i] = (look_words_[at] >> (l & 63)) & 1ULL
                                 ? Phase::kLook
                             : (compute_words_[at] >> (l & 63)) & 1ULL
                                 ? Phase::kCompute
                                 : Phase::kMove;
          }
          phase_schedulers_[l]->advance(t, *mirrors_[l], virt_phases,
                                        virt_mask);
        }
        PEF_CHECK(virt_mask.size() == k);
        for (std::uint32_t i = 0; i < k; ++i) {
          if (virt_mask[i] != 0) words[std::size_t{i} * lw + word] |= bit;
        }
        break;
      }
    }
  }
}

void BatchEngine::fill_moving_words(std::uint32_t l0, std::uint32_t l1) {
  // moving = advancing AND in-Move-phase, one AND per robot-word.
  // Snapshotted before the tick's transitions: robots whose Compute fires
  // this tick enter their Move phase but must not move until the next
  // activation.
  const std::uint32_t w0 = l0 >> 6;
  const std::uint32_t w1 = (l1 + 63) >> 6;
  const std::uint64_t* const mask = mask_words_.data();
  const std::uint64_t* const move = move_words_.data();
  std::uint64_t* const moving = moving_words_.data();
  for (std::uint32_t i = 0; i < robots_; ++i) {
    const std::size_t row = std::size_t{i} * lane_words_;
    for (std::uint32_t w = w0; w < w1; ++w) {
      moving[row + w] = mask[row + w] & move[row + w];
    }
  }
}

void BatchEngine::extract_lane_mask(const std::uint64_t* plane,
                                    std::uint32_t lane,
                                    ActivationMask& out) const {
  out.assign(robots_, 0);
  const std::uint32_t word = lane >> 6;
  const std::uint32_t shift = lane & 63;
  for (std::uint32_t i = 0; i < robots_; ++i) {
    out[i] = static_cast<std::uint8_t>(
        (plane[std::size_t{i} * lane_words_ + word] >> shift) & 1ULL);
  }
}

void BatchEngine::step_ssync() {
  // The mask plane must be complete before the serial prologue: virtual
  // edge adversaries and the trace recorder read arbitrary lanes.
  parallel_lane_slices([&](std::uint32_t l0, std::uint32_t l1) {
    fill_mask_words(l0, l1, now_);
  });
  if (edge_refill_needed_) refill_edges(0, active_, now_);
  begin_trace_round();

  with_kernel_id(kernel_id_, [&]<KernelId Id>() {
    parallel_lane_slices([&](std::uint32_t l0, std::uint32_t l1) {
      const std::size_t log_end = ssync_pass<Id>(l0, l1);
      apply_move_log(std::size_t{l0} * robots_, log_end);
      observe_boundary(now_ + 1, l0, l1);
    });
  });
  for (std::uint32_t l = 0; l < active_; ++l) {
    tower_flag_[l] = multi_nodes_[l] != 0 ? 1 : 0;
  }
}

template <KernelId Id>
void BatchEngine::ssync_round(std::uint32_t l0, std::uint32_t l1, Time t) {
  fill_mask_words(l0, l1, t);
  if (edge_refill_needed_) refill_edges(l0, l1, t);
  const std::size_t log_end = ssync_pass<Id>(l0, l1);
  apply_move_log(std::size_t{l0} * robots_, log_end);
  for (std::uint32_t l = l0; l < l1; ++l) {
    tower_flag_[l] = multi_nodes_[l] != 0 ? 1 : 0;
  }
  observe_boundary(t + 1, l0, l1);
  update_mirrors(l0, l1);
  finish_round(l0, l1, t + 1);
  if (ff_enabled_) ff_observe(l0, l1, t + 1);
}

template <KernelId Id>
std::size_t BatchEngine::ssync_pass(std::uint32_t l0, std::uint32_t l1) {
  const std::uint32_t stride = batch_;
  const std::uint32_t k = robots_;
  const std::uint32_t n = nodes_;
  const std::uint32_t lw = lane_words_;
  const std::uint32_t w0 = l0 >> 6;
  const std::uint32_t w1 = (l1 + 63) >> 6;
  NodeId* const node = node_.data();
  std::uint8_t* const dir = dir_.data();
  const std::uint8_t* const cw = right_cw_.data();
  Xoshiro256* const krng = krng_.data();
  std::uint64_t* const kcounter = kcounter_.data();
  std::uint8_t* const khas_moved = khas_moved_.data();
  const KernelSpec* const spec = specs_.data();
  const std::uint64_t* const edges = edge_plane_.data();
  const std::uint32_t ewpr = edge_words_per_row_;
  const std::uint64_t* const mask = mask_words_.data();
  const std::uint32_t* const occ = occ_.data();

  // Fused L-C-M with DEFERRED occupancy: the only cross-robot coupling in
  // a round is the Look phase's multiplicity bit, and it must read the
  // round-START occupancy — so Moves update node_ in place (no other
  // robot's Look reads it) but log their (lane, from, to) instead of
  // touching occ_, and the log is applied after the pass.  One mask-word
  // iteration total: the word plane loads cover 64 replicas each and ctz
  // jumps straight to the activated robots.  Each slice logs into its own
  // disjoint move_log_ region (lane l0's region starts at l0 * k — a
  // slice's lanes can move at most (l1 - l0) * k times).
  const std::size_t log_base = std::size_t{l0} * k;
  PendingMove* log_cursor = move_log_.data() + log_base;
  for (std::uint32_t i = 0; i < k; ++i) {
    const std::size_t base = std::size_t{i} * stride;
    for (std::uint32_t w = w0; w < w1; ++w) {
      std::uint64_t m = mask[std::size_t{i} * lw + w];
      while (m != 0) {
        const std::uint32_t l =
            (w << 6) + static_cast<std::uint32_t>(__builtin_ctzll(m));
        m &= m - 1;
        const std::size_t at = base + l;
        const NodeId u = node[at];
        const bool ahead_cw = dir[at] == cw[at];
        const auto [ahead, behind] = adjacent_edges(u, ahead_cw, n);
        const std::uint64_t* const words = edges + std::size_t{l} * ewpr;
        View view;
        view.exists_edge_ahead = edge_present(words, ahead);
        view.exists_edge_behind = edge_present(words, behind);
        view.other_robots_on_node = occ[std::size_t{l} * n + u] > 1;
        auto d = static_cast<LocalDirection>(dir[at]);
        kernel_compute<Id>(spec[l], view, d,
                           kernel_state_at<Id>(krng, kcounter, khas_moved, at));
        dir[at] = static_cast<std::uint8_t>(d);

        const bool move_cw = static_cast<std::uint8_t>(d) == cw[at];
        if (edge_present(words, adjacent_edges(u, move_cw, n).first)) {
          const NodeId to = step_node(u, move_cw, n);
          node[at] = to;
          ++moves_[l];
          *log_cursor++ = {l, u, to};
        }
      }
    }
  }
  return static_cast<std::size_t>(log_cursor - move_log_.data());
}

void BatchEngine::apply_move_log(std::size_t begin, std::size_t end) {
  // Replay moves onto the occupancy rows and tower counters.  Both are
  // lane-indexed and a range's log only names its own lanes, so a range
  // replays its own region immediately after its pass — no cross-range
  // draining, and the replay order within a range matches the serial one
  // (counter updates commute anyway).
  const std::uint32_t n = nodes_;
  const PendingMove* it = move_log_.data() + begin;
  const PendingMove* const stop = move_log_.data() + end;
  for (; it != stop; ++it) {
    const PendingMove& mv = *it;
    const std::size_t row = std::size_t{mv.lane} * n;
    if (--occ_[row + mv.from] == 1) --multi_nodes_[mv.lane];
    if (++occ_[row + mv.to] == 2) ++multi_nodes_[mv.lane];
  }
}

void BatchEngine::step_async() {
  // Same sectioning as step_ssync; the tick prologue additionally
  // snapshots the moving mask (advancing AND in-Move) per slice.
  parallel_lane_slices([&](std::uint32_t l0, std::uint32_t l1) {
    fill_mask_words(l0, l1, now_);
    fill_moving_words(l0, l1);
  });
  if (edge_refill_needed_) refill_edges(0, active_, now_);
  begin_trace_round();

  with_kernel_id(kernel_id_, [&]<KernelId Id>() {
    parallel_lane_slices([&](std::uint32_t l0, std::uint32_t l1) {
      const std::size_t log_end = async_pass<Id>(l0, l1);
      apply_move_log(std::size_t{l0} * robots_, log_end);
      observe_boundary(now_ + 1, l0, l1);
    });
  });
  for (std::uint32_t l = 0; l < active_; ++l) {
    tower_flag_[l] = multi_nodes_[l] != 0 ? 1 : 0;
  }
}

template <KernelId Id>
void BatchEngine::async_round(std::uint32_t l0, std::uint32_t l1, Time t) {
  fill_mask_words(l0, l1, t);
  fill_moving_words(l0, l1);
  if (edge_refill_needed_) refill_edges(l0, l1, t);
  const std::size_t log_end = async_pass<Id>(l0, l1);
  apply_move_log(std::size_t{l0} * robots_, log_end);
  for (std::uint32_t l = l0; l < l1; ++l) {
    tower_flag_[l] = multi_nodes_[l] != 0 ? 1 : 0;
  }
  observe_boundary(t + 1, l0, l1);
  update_mirrors(l0, l1);
  finish_round(l0, l1, t + 1);
  if (ff_enabled_) ff_observe(l0, l1, t + 1);
}

template <KernelId Id>
std::size_t BatchEngine::async_pass(std::uint32_t l0, std::uint32_t l1) {
  const std::uint32_t stride = batch_;
  const std::uint32_t k = robots_;
  const std::uint32_t n = nodes_;
  const std::uint32_t lw = lane_words_;
  const std::uint32_t w0 = l0 >> 6;
  const std::uint32_t w1 = (l1 + 63) >> 6;
  NodeId* const node = node_.data();
  std::uint8_t* const dir = dir_.data();
  const std::uint8_t* const cw = right_cw_.data();
  Xoshiro256* const krng = krng_.data();
  std::uint64_t* const kcounter = kcounter_.data();
  std::uint8_t* const khas_moved = khas_moved_.data();
  const KernelSpec* const spec = specs_.data();
  const std::uint64_t* const edges = edge_plane_.data();
  const std::uint32_t ewpr = edge_words_per_row_;
  const std::uint64_t* const mask = mask_words_.data();
  const std::uint64_t* const moving = moving_words_.data();
  std::uint64_t* const look_w = look_words_.data();
  std::uint64_t* const compute_w = compute_words_.data();
  std::uint64_t* const move_w = move_words_.data();
  View* const pending = pending_views_.data();
  const std::uint32_t* const occ = occ_.data();

  // An advancing robot executes exactly one of Look / Compute / Move this
  // tick.  The one-hot phase planes resolve each subset by a word AND
  // against the advancing mask — no per-robot phase loads, no
  // data-dependent branches — and the matched bits transition between
  // planes as whole words.  Lookers and movers are disjoint robots and a
  // Move only writes its own node slot, so ONE fused pass is sound with
  // the same deferred-occupancy trick as SSYNC: every Look reads the
  // tick-start occ_ because moves log their occupancy deltas instead of
  // applying them.  moving_words_ was snapshotted before any transition,
  // so a Compute firing this tick does not also Move this tick.  Like
  // ssync_pass, the slice logs into its own move_log_ region.
  const std::size_t log_base = std::size_t{l0} * k;
  PendingMove* log_cursor = move_log_.data() + log_base;
  for (std::uint32_t i = 0; i < k; ++i) {
    const std::size_t base = std::size_t{i} * stride;
    for (std::uint32_t w = w0; w < w1; ++w) {
      const std::size_t mw = std::size_t{i} * lw + w;
      const std::uint64_t adv = mask[mw];
      const std::uint64_t lk = adv & look_w[mw];
      const std::uint64_t cp = adv & compute_w[mw];
      const std::uint64_t mv = moving[mw];

      std::uint64_t m = lk;
      while (m != 0) {
        const std::uint32_t l =
            (w << 6) + static_cast<std::uint32_t>(__builtin_ctzll(m));
        m &= m - 1;
        const std::size_t at = base + l;
        // Snapshot against the CURRENT edge set and configuration; the
        // view may be stale by the time Compute / Move execute.
        const NodeId u = node[at];
        const bool ahead_cw = dir[at] == cw[at];
        const auto [ahead, behind] = adjacent_edges(u, ahead_cw, n);
        const std::uint64_t* const words = edges + std::size_t{l} * ewpr;
        View view;
        view.exists_edge_ahead = edge_present(words, ahead);
        view.exists_edge_behind = edge_present(words, behind);
        view.other_robots_on_node = occ[std::size_t{l} * n + u] > 1;
        pending[at] = view;
      }

      m = cp;
      while (m != 0) {
        const std::uint32_t l =
            (w << 6) + static_cast<std::uint32_t>(__builtin_ctzll(m));
        m &= m - 1;
        const std::size_t at = base + l;
        auto d = static_cast<LocalDirection>(dir[at]);
        kernel_compute<Id>(
            spec[l], pending[at], d,
            kernel_state_at<Id>(krng, kcounter, khas_moved, at));
        dir[at] = static_cast<std::uint8_t>(d);
      }

      m = mv;
      while (m != 0) {
        const std::uint32_t l =
            (w << 6) + static_cast<std::uint32_t>(__builtin_ctzll(m));
        m &= m - 1;
        const std::size_t at = base + l;
        const NodeId u = node[at];
        const bool move_cw = dir[at] == cw[at];
        const std::uint64_t* const words = edges + std::size_t{l} * ewpr;
        if (edge_present(words, adjacent_edges(u, move_cw, n).first)) {
          const NodeId to = step_node(u, move_cw, n);
          node[at] = to;
          ++moves_[l];
          *log_cursor++ = {l, u, to};
        }
      }

      // Word-level transitions: L -> C, C -> M, M -> L.
      look_w[mw] = (look_w[mw] & ~lk) | mv;
      compute_w[mw] = (compute_w[mw] & ~cp) | lk;
      move_w[mw] = (move_w[mw] & ~mv) | cp;
    }
  }
  return static_cast<std::size_t>(log_cursor - move_log_.data());
}

void BatchEngine::update_mirrors(std::uint32_t l0, std::uint32_t l1) {
  // Lanes with a gamma mirror get it refreshed from the planes; dirs and
  // positions that did not change are no-op writes (relocate_robot
  // self-checks), so one uniform pass is correct for every model.  Lanes
  // without a mirror (batchable adversary + devirtualized policy — the
  // common sweep case) skip this entirely.
  for (std::uint32_t l = l0; l < l1; ++l) {
    Configuration* const mirror = mirrors_[l].get();
    if (mirror == nullptr) continue;
    for (std::uint32_t i = 0; i < robots_; ++i) {
      const std::size_t at = std::size_t{i} * batch_ + l;
      mirror->set_robot_dir(i, static_cast<LocalDirection>(dir_[at]));
      mirror->relocate_robot(i, node_[at]);
    }
  }
}

void BatchEngine::finish_round(std::uint32_t l0, std::uint32_t l1, Time t1) {
  for (std::uint32_t l = l0; l < l1; ++l) {
    stats_[l].rounds = t1;
    stats_[l].total_moves = moves_[l];
    if (tower_flag_[l]) {
      ++stats_[l].tower_rounds;
      if (!prev_had_tower_[l]) ++stats_[l].tower_formations;
      prev_had_tower_[l] = 1;
    } else {
      prev_had_tower_[l] = 0;
    }
  }
}

void BatchEngine::ff_init() {
  ff_enabled_ = false;
  if (!options_.fast_forward.enabled || options_.record_trace) return;
  ff_.resize(batch_);
  for (std::uint32_t l = 0; l < batch_; ++l) {
    LaneFf& f = ff_[l];
    // Mirrors Engine::ff_eligible: the lane must be a pure function of its
    // sampled state — oblivious periodic edges, non-Bernoulli activation.
    if (schedules_[l] == nullptr) continue;
    Time activation_period = 1;
    if (model_ != ExecutionModel::kFsync) {
      const auto kind = static_cast<ActivationBatchKind>(act_kind_[l]);
      if (kind == ActivationBatchKind::kRoundRobin) {
        activation_period = robots_;
      } else if (kind != ActivationBatchKind::kFull) {
        continue;  // Bernoulli draws or an unknown virtual policy
      }
    }
    const ScheduleRecurrence recurrence = schedules_[l]->recurrence();
    if (recurrence.period == 0) continue;
    const Time env_period =
        combine_recurrence_periods(recurrence.period, activation_period);
    if (env_period == 0 || env_period > kMaxEnvPeriod) continue;
    f.stage = LaneFf::Stage::kSearch;
    f.env_period = env_period;
    f.env_start = recurrence.start;
    f.detector = BrentDetector(options_.fast_forward.hash_mask);
    ff_enabled_ = true;
  }
}

void BatchEngine::ff_pack_lane(std::uint32_t lane,
                               std::vector<std::uint64_t>& out) const {
  out.clear();
  const std::uint32_t stride = batch_;
  const bool rng_state = kernel_id_ == KernelId::kRandomWalk;
  for (std::uint32_t i = 0; i < robots_; ++i) {
    const std::size_t at = std::size_t{i} * stride + lane;
    out.push_back((static_cast<std::uint64_t>(node_[at]) << 32) |
                  (static_cast<std::uint64_t>(dir_[at]) << 1) |
                  right_cw_[at]);
    out.push_back(kcounter_[at]);
    out.push_back(khas_moved_[at]);
    if (rng_state) {
      for (const std::uint64_t word : krng_[at].state()) out.push_back(word);
    }
  }
  if (model_ == ExecutionModel::kAsync) {
    // One-hot phase planes + pending Look views (stale views are
    // deterministic too, so including them only tightens the test).
    const std::uint64_t bit = 1ULL << (lane & 63);
    for (std::uint32_t i = 0; i < robots_; ++i) {
      const std::size_t at = std::size_t{i} * stride + lane;
      const std::size_t w = std::size_t{i} * lane_words_ + (lane >> 6);
      std::uint64_t phase = 0;
      if ((compute_words_[w] & bit) != 0) phase = 1;
      if ((move_words_[w] & bit) != 0) phase = 2;
      const View& view = pending_views_[at];
      out.push_back((phase << 3) |
                    (static_cast<std::uint64_t>(view.exists_edge_ahead) << 2) |
                    (static_cast<std::uint64_t>(view.exists_edge_behind)
                     << 1) |
                    static_cast<std::uint64_t>(view.other_robots_on_node));
    }
  }
}

void BatchEngine::ff_observe(std::uint32_t l0, std::uint32_t l1, Time t) {
  for (std::uint32_t l = l0; l < l1; ++l) {
    LaneFf& f = ff_[l];
    if (f.stage == LaneFf::Stage::kSearch) {
      if (t < f.env_start || (t - f.env_start) % f.env_period != 0) continue;
      ff_pack_lane(l, f.packed);
      StateHash hash;
      for (const std::uint64_t word : f.packed) hash.add(word);
      const Time samples = f.detector.observe(f.packed, hash.value);
      if (samples == 0) continue;
      const Time period = samples * f.env_period;
      // Worth engaging only when the measurement period AND at least one
      // whole skipped repetition fit before the lane's horizon.
      if (horizons_[l] - t < 2 * period) {
        f.stage = LaneFf::Stage::kDone;
        continue;
      }
      f.period = period;
      f.measure_end = t + period;
      f.snap_moves = moves_[l];
      f.snap_tower_rounds = stats_[l].tower_rounds;
      f.snap_formations = stats_[l].tower_formations;
      const VisitCell* row = visits_.data() + std::size_t{l} * nodes_;
      f.counts.resize(nodes_);
      for (std::uint32_t u = 0; u < nodes_; ++u) {
        f.counts[u] = row[u].count;
      }
      f.stage = LaneFf::Stage::kMeasure;
    } else if (f.stage == LaneFf::Stage::kMeasure) {
      if (t != f.measure_end) continue;
      // The delta window closed: f.counts flips from snapshots to
      // per-period deltas, and the lane is ready to extrapolate at the
      // next epoch boundary (the deltas are window-start independent, so
      // applying them later — from any in-cycle time — stays exact).
      f.delta_moves = moves_[l] - f.snap_moves;
      f.delta_tower_rounds = stats_[l].tower_rounds - f.snap_tower_rounds;
      f.delta_formations = stats_[l].tower_formations - f.snap_formations;
      const VisitCell* row = visits_.data() + std::size_t{l} * nodes_;
      for (std::uint32_t u = 0; u < nodes_; ++u) {
        f.counts[u] = row[u].count - f.counts[u];
      }
      f.stage = LaneFf::Stage::kArmed;
    }
  }
}

void BatchEngine::ff_apply_armed() {
  for (std::uint32_t l = 0; l < active_; ++l) {
    LaneFf& f = ff_[l];
    if (f.stage != LaneFf::Stage::kArmed) continue;
    f.stage = LaneFf::Stage::kDone;
    const Time horizon = horizons_[l];
    const Time reps = (horizon - now_) / f.period;
    if (reps == 0) continue;
    const Time skip = f.period * reps;
    moves_[l] += f.delta_moves * reps;
    stats_[l].total_moves = moves_[l];
    stats_[l].tower_rounds += f.delta_tower_rounds * reps;
    stats_[l].tower_formations += f.delta_formations * reps;
    VisitCell* row = visits_.data() + std::size_t{l} * nodes_;
    for (std::uint32_t u = 0; u < nodes_; ++u) {
      row[u].count += static_cast<std::uint32_t>(
          std::uint64_t{f.counts[u]} * reps);
    }
    f.skipped = skip;
    // The lane keeps simulating in its local clock: it now retires after
    // the final partial period, and ff_finalize_lane shifts the clocked
    // stats by `skip` so the retired lane lands on the full-horizon run.
    horizons_[l] = horizon - skip;
  }
}

void BatchEngine::ff_finalize_lane(std::uint32_t lane) {
  LaneFf& f = ff_[lane];
  if (f.skipped == 0) return;
  stats_[lane].rounds += f.skipped;  // == the replica's true horizon
  VisitCell* row = visits_.data() + std::size_t{lane} * nodes_;
  const auto skip32 = static_cast<std::uint32_t>(f.skipped);
  for (std::uint32_t u = 0; u < nodes_; ++u) {
    // In-cycle nodes (per-period delta > 0) had their true last visit in
    // the replayed window, `skip` later than the local stamp; nodes last
    // seen before the cycle keep their (already true) stamp.
    if (f.counts[u] != 0) row[u].last += skip32;
  }
}

void BatchEngine::retire_finished() {
  // retire_finished runs exactly at epoch boundaries (run_all) or between
  // rounds (step), so no epoch span is in flight: safe point to shrink
  // armed lanes' horizons.
  if (ff_enabled_) ff_apply_armed();
  for (std::uint32_t l = active_; l-- > 0;) {
    if (stats_[l].rounds >= horizons_[l]) {
      if (!ff_.empty()) ff_finalize_lane(l);
      const std::uint32_t last = --active_;
      if (l != last) swap_lanes(l, last);
    }
  }
}

void BatchEngine::swap_lanes(std::uint32_t a, std::uint32_t b) {
  using std::swap;
  for (std::uint32_t i = 0; i < robots_; ++i) {
    const std::size_t pa = std::size_t{i} * batch_ + a;
    const std::size_t pb = std::size_t{i} * batch_ + b;
    swap(node_[pa], node_[pb]);
    swap(dir_[pa], dir_[pb]);
    swap(right_cw_[pa], right_cw_[pb]);
    swap(mult_[pa], mult_[pb]);
    swap(kcounter_[pa], kcounter_[pb]);
    swap(khas_moved_[pa], khas_moved_[pb]);
    if (kernel_id_ == KernelId::kRandomWalk) swap(krng_[pa], krng_[pb]);
    if (model_ == ExecutionModel::kAsync) {
      swap(pending_views_[pa], pending_views_[pb]);
      // One-hot phase planes: swap lane a's and b's bits in each plane.
      const std::size_t wa = std::size_t{i} * lane_words_ + (a >> 6);
      const std::size_t wb = std::size_t{i} * lane_words_ + (b >> 6);
      const std::uint64_t bit_a = 1ULL << (a & 63);
      const std::uint64_t bit_b = 1ULL << (b & 63);
      for (std::uint64_t* plane :
           {look_words_.data(), compute_words_.data(), move_words_.data()}) {
        const bool va = (plane[wa] & bit_a) != 0;
        const bool vb = (plane[wb] & bit_b) != 0;
        if (va != vb) {
          plane[wa] ^= bit_a;
          plane[wb] ^= bit_b;
        }
      }
    }
  }
  const std::size_t ra = std::size_t{a} * nodes_;
  const std::size_t rb = std::size_t{b} * nodes_;
  std::swap_ranges(visits_.begin() + ra, visits_.begin() + ra + nodes_,
                   visits_.begin() + rb);
  if (stamped_mult_) {
    std::swap_ranges(stamp_epoch_.begin() + ra,
                     stamp_epoch_.begin() + ra + nodes_,
                     stamp_epoch_.begin() + rb);
    std::swap_ranges(stamp_count_.begin() + ra,
                     stamp_count_.begin() + ra + nodes_,
                     stamp_count_.begin() + rb);
  }
  // Edge rows are addressed by lane index, so the row CONTENTS move (the
  // mask word planes are per-round scratch, regenerated before use — no
  // swap needed there).
  const std::size_t ea = std::size_t{a} * edge_words_per_row_;
  const std::size_t eb = std::size_t{b} * edge_words_per_row_;
  std::swap_ranges(edge_plane_.begin() + ea,
                   edge_plane_.begin() + ea + edge_words_per_row_,
                   edge_plane_.begin() + eb);

  swap(algorithms_[a], algorithms_[b]);
  swap(specs_[a], specs_[b]);
  swap(adversaries_[a], adversaries_[b]);
  swap(ssync_advs_[a], ssync_advs_[b]);
  swap(activations_[a], activations_[b]);
  swap(phase_schedulers_[a], phase_schedulers_[b]);
  swap(schedules_[a], schedules_[b]);
  swap(mirrors_[a], mirrors_[b]);
  swap(horizons_[a], horizons_[b]);
  swap(edges_[a], edges_[b]);
  swap(refill_[a], refill_[b]);
  swap(edges_full_[a], edges_full_[b]);
  swap(moves_[a], moves_[b]);
  swap(tower_flag_[a], tower_flag_[b]);
  swap(prev_had_tower_[a], prev_had_tower_[b]);
  swap(max_closed_gap_[a], max_closed_gap_[b]);
  swap(stats_[a], stats_[b]);
  if (!ff_.empty()) swap(ff_[a], ff_[b]);
  if (model_ != ExecutionModel::kFsync) {
    swap(act_kind_[a], act_kind_[b]);
    swap(act_p_[a], act_p_[b]);
    swap(act_rng_[a], act_rng_[b]);
    swap(multi_nodes_[a], multi_nodes_[b]);
    std::swap_ranges(occ_.begin() + ra, occ_.begin() + ra + nodes_,
                     occ_.begin() + rb);
  }

  const std::uint32_t replica_a = replica_of_lane_[a];
  const std::uint32_t replica_b = replica_of_lane_[b];
  replica_of_lane_[a] = replica_b;
  replica_of_lane_[b] = replica_a;
  lane_of_replica_[replica_a] = b;
  lane_of_replica_[replica_b] = a;
}

// ---------------------------------------------------------------------------
// Trace reconstruction (cold path).

void BatchEngine::begin_trace_round() {
  for (std::uint32_t l = 0; l < active_; ++l) {
    RoundRecord& record = record_scratch_[l];
    record.time = now_;
    if (record.edges.edge_count() != edge_count_) {
      record.edges = EdgeSet(edge_count_);
    }
    record.edges.assign_words(edge_row(l));
    record.robots.assign(robots_, RobotRoundRecord{});
    for (std::uint32_t i = 0; i < robots_; ++i) {
      const std::size_t at = std::size_t{i} * batch_ + l;
      RobotRoundRecord& r = record.robots[i];
      r.node_before = node_[at];
      r.node_after = node_[at];
      r.dir_before = static_cast<LocalDirection>(dir_[at]);
      r.dir_after = r.dir_before;
      // The multiplicity bit of every Look fired this round is
      // reconstructable up front: all Looks read the start-of-round
      // occupancy (the mult plane for FSYNC, the occ rows otherwise).
      // Which robots Look depends on the model.
      bool looks = false;
      switch (model_) {
        case ExecutionModel::kFsync:
          looks = true;
          break;
        case ExecutionModel::kSsync:
          looks = mask_bit(mask_words_.data(), i, l);
          break;
        case ExecutionModel::kAsync:
          // Advancing and still in the Look phase (the planes are
          // pre-transition here: tracing runs before the tick pass).
          looks = mask_bit(mask_words_.data(), i, l) &&
                  mask_bit(look_words_.data(), i, l);
          break;
      }
      if (looks) {
        r.saw_other_robots =
            model_ == ExecutionModel::kFsync
                ? mult_[at] != 0
                : occ_[std::size_t{l} * nodes_ + node_[at]] > 1;
      }
    }
  }
}

void BatchEngine::end_trace_round() {
  for (std::uint32_t l = 0; l < active_; ++l) {
    RoundRecord& record = record_scratch_[l];
    for (std::uint32_t i = 0; i < robots_; ++i) {
      const std::size_t at = std::size_t{i} * batch_ + l;
      RobotRoundRecord& r = record.robots[i];
      r.dir_after = static_cast<LocalDirection>(dir_[at]);
      r.node_after = node_[at];
      // One Move crosses exactly one edge, so on a ring (n >= 2) a robot
      // moved iff its node changed.
      r.moved = r.node_after != r.node_before;
    }
    traces_[replica_of_lane_[l]]->append(record);
  }
}

// ---------------------------------------------------------------------------
// Per-replica results.

const EngineStats& BatchEngine::stats(std::uint32_t replica) const {
  PEF_CHECK(replica < batch_);
  return stats_[lane_of_replica_[replica]];
}

bool BatchEngine::fast_forwarded(std::uint32_t replica) const {
  PEF_CHECK(replica < batch_);
  return !ff_.empty() && ff_[lane_of_replica_[replica]].skipped > 0;
}

Time BatchEngine::rounds_simulated(std::uint32_t replica) const {
  PEF_CHECK(replica < batch_);
  const std::uint32_t l = lane_of_replica_[replica];
  const Time skipped = ff_.empty() ? Time{0} : ff_[l].skipped;
  return stats_[l].rounds - skipped;
}

Time BatchEngine::detected_period(std::uint32_t replica) const {
  PEF_CHECK(replica < batch_);
  if (ff_.empty()) return 0;
  const LaneFf& f = ff_[lane_of_replica_[replica]];
  return f.skipped > 0 ? f.period : Time{0};
}

CoverageReport BatchEngine::coverage_report(std::uint32_t replica,
                                            Time suffix_window) const {
  PEF_CHECK(replica < batch_);
  const std::uint32_t l = lane_of_replica_[replica];
  const Time local_now = stats_[l].rounds;
  const std::size_t row = std::size_t{l} * nodes_;

  CoverageReport report;
  report.horizon = local_now;
  report.suffix_window =
      suffix_window == 0 ? local_now / 4 + 1 : suffix_window;
  report.visit_counts.resize(nodes_);
  for (NodeId u = 0; u < nodes_; ++u) {
    report.visit_counts[u] = visits_[row + u].count;
  }
  report.visited_node_count = stats_[l].visited_node_count;
  report.cover_time = stats_[l].cover_time;
  report.max_closed_gap = max_closed_gap_[l];

  const Time suffix_start =
      local_now >= report.suffix_window ? local_now - report.suffix_window : 0;
  for (NodeId u = 0; u < nodes_; ++u) {
    const VisitCell& cell = visits_[row + u];
    const Time open_gap = cell.count != 0 ? local_now - cell.last : local_now;
    report.max_revisit_gap =
        std::max({report.max_revisit_gap, report.max_closed_gap, open_gap});
    if (cell.count != 0 && cell.last >= suffix_start) {
      ++report.nodes_visited_in_suffix;
    }
  }
  return report;
}

NodeId BatchEngine::robot_node(std::uint32_t replica, RobotId r) const {
  PEF_CHECK(replica < batch_ && r < robots_);
  return node_[std::size_t{r} * batch_ + lane_of_replica_[replica]];
}

Configuration BatchEngine::snapshot(std::uint32_t replica) const {
  PEF_CHECK(replica < batch_);
  return snapshot_lane(lane_of_replica_[replica]);
}

Configuration BatchEngine::snapshot_lane(std::uint32_t lane) const {
  std::vector<RobotSnapshot> snaps;
  snaps.reserve(robots_);
  for (std::uint32_t i = 0; i < robots_; ++i) {
    const std::size_t at = std::size_t{i} * batch_ + lane;
    RobotSnapshot s;
    s.node = node_[at];
    s.dir = static_cast<LocalDirection>(dir_[at]);
    s.chirality = Chirality(right_cw_[at] != 0);
    snaps.push_back(std::move(s));
  }
  return Configuration(ring_, std::move(snaps));
}

const Trace& BatchEngine::trace(std::uint32_t replica) const {
  PEF_CHECK(replica < batch_);
  PEF_CHECK_MSG(!traces_.empty(),
                "trace() requires BatchEngineOptions::record_trace");
  return *traces_[replica];
}

}  // namespace pef
