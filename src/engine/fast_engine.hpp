// Compatibility shim: FastEngine is the unified Engine (engine/engine.hpp)
// run in its default FSYNC configuration.
//
// PR 1 introduced FastEngine as a dedicated FSYNC throughput engine; the
// execution-model unification folded its round core into Engine, which runs
// FSYNC, SSYNC and ASYNC (and both virtual and devirtualized-kernel Compute
// dispatch) over the same SoA state.  Existing call sites keep compiling
// against these aliases; new code should name Engine directly.
#pragma once

#include "engine/engine.hpp"

namespace pef {

using FastEngine = Engine;
using FastEngineOptions = EngineOptions;

}  // namespace pef
