// FastEngine — the throughput-oriented FSYNC execution engine.
//
// Semantically identical to scheduler/Simulator (the reference
// implementation; tests/fast_engine_test.cpp asserts exact round-by-round
// equality), but laid out for speed:
//
//   * struct-of-arrays robot state: parallel vectors for node, local dir and
//     chirality instead of an array of Robot objects;
//   * a per-node occupancy histogram maintained incrementally, making the
//     Look phase's multiplicity predicate O(1) per robot;
//   * a reusable EdgeSet scratch buffer: oblivious adversaries fill it in
//     place via EdgeSchedule::edges_into (zero allocation per round);
//   * the adaptive-adversary Configuration is one persistent mirror updated
//     in place (O(moves) per round), not a fresh snapshot per round;
//   * unchecked bitset accessors on the edge-presence hot path (edge ids
//     come from Ring::adjacent_edge, which is total on valid nodes);
//   * snapshot() / trace materialization only on demand — with trace
//     recording off, the engine keeps only O(n + k) state and a handful of
//     incrementally maintained aggregates.
//
// Use Simulator when you need a canonical, obviously-correct reference or a
// full Trace by default; use FastEngine for sweeps, benches and anything
// where rounds/sec matters.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "adversary/adversary.hpp"
#include "analysis/coverage.hpp"
#include "common/types.hpp"
#include "robot/algorithm.hpp"
#include "robot/robot.hpp"
#include "scheduler/trace.hpp"

namespace pef {

struct FastEngineOptions {
  /// Record a full Trace (positions, dirs, edge sets per round).  Off by
  /// default: the engine's niche is long timing sweeps; flip it on when the
  /// run feeds trace-based analysis (towers, legality audits, rendering).
  bool record_trace = false;

  /// Enforce the paper's well-initiated execution requirements: strictly
  /// fewer robots than nodes and a towerless initial configuration.
  bool enforce_well_initiated = true;
};

/// Aggregates the engine maintains incrementally every round, so sweeps get
/// their metrics without recording a trace.  Visit semantics match
/// analyze_coverage(): configuration times 0..rounds, one visit per robot.
struct EngineStats {
  Time rounds = 0;
  std::uint64_t total_moves = 0;
  /// Configuration times (of rounds+1 many) at which some node held >= 2
  /// robots.
  Time tower_rounds = 0;
  /// Number of towered episodes: maximal runs of consecutive boundaries at
  /// which some tower existed (a transition from a towerless boundary to a
  /// towered one counts 1).  Coarser than analyze_towers'
  /// tower_formation_count, which tracks per-node / per-robot-set events —
  /// use a recorded trace when that granularity matters.
  std::uint64_t tower_formations = 0;
  std::uint32_t visited_node_count = 0;
  std::optional<Time> cover_time;
};

class FastEngine {
 public:
  FastEngine(Ring ring, AlgorithmPtr algorithm, AdversaryPtr adversary,
             const std::vector<RobotPlacement>& placements,
             FastEngineOptions options = {});

  /// Execute one synchronous Look-Compute-Move round.
  void step();

  /// Execute `rounds` further rounds.
  void run(Time rounds);

  [[nodiscard]] Time now() const { return now_; }
  [[nodiscard]] const Ring& ring() const { return ring_; }
  [[nodiscard]] std::uint32_t robot_count() const {
    return static_cast<std::uint32_t>(node_.size());
  }

  [[nodiscard]] NodeId robot_node(RobotId r) const { return node_[r]; }
  [[nodiscard]] LocalDirection robot_dir(RobotId r) const {
    return static_cast<LocalDirection>(dir_[r]);
  }
  [[nodiscard]] Chirality robot_chirality(RobotId r) const {
    return Chirality(right_cw_[r] != 0);
  }
  [[nodiscard]] const AlgorithmState& robot_state(RobotId r) const {
    return *states_[r];
  }

  /// Robots currently on node `u` — O(1) from the occupancy histogram.
  [[nodiscard]] std::uint32_t robots_on(NodeId u) const { return occ_[u]; }

  /// Materialize the current configuration (the gamma at the start of the
  /// next round).  On-demand: costs O(k), the hot loop never calls it.
  [[nodiscard]] Configuration snapshot() const;

  /// Incrementally maintained aggregates (always available).
  [[nodiscard]] const EngineStats& stats() const { return stats_; }

  /// Coverage report equivalent to analyze_coverage(trace) but computed from
  /// the incremental per-node bookkeeping — available without a trace.
  [[nodiscard]] CoverageReport coverage_report(Time suffix_window = 0) const;

  /// Only valid when options.record_trace was set.
  [[nodiscard]] const Trace& trace() const { return *trace_; }
  [[nodiscard]] bool recording_trace() const { return trace_ != nullptr; }

  [[nodiscard]] Adversary& adversary() { return *adversary_; }

 private:
  void observe_boundary(Time t);  // visit/tower bookkeeping at config time t

  Ring ring_;
  AlgorithmPtr algorithm_;
  AdversaryPtr adversary_;
  FastEngineOptions options_;
  Time now_ = 0;

  // Struct-of-arrays robot state.
  std::vector<NodeId> node_;
  std::vector<std::uint8_t> dir_;       // LocalDirection
  std::vector<std::uint8_t> right_cw_;  // Chirality::right_is_clockwise
  std::vector<std::unique_ptr<AlgorithmState>> states_;

  // Occupancy histogram + number of nodes currently holding >= 2 robots.
  std::vector<std::uint32_t> occ_;
  std::uint32_t multi_nodes_ = 0;
  bool prev_had_tower_ = false;

  // Reused per-round scratch.
  EdgeSet edges_;                  // E_t
  std::vector<std::uint8_t> moved_;  // per-robot moved flag (trace path)

  // Oblivious fast path: when the adversary is an ObliviousAdversary we call
  // the schedule's in-place fill directly and never touch gamma_mirror_.
  const EdgeSchedule* schedule_ = nullptr;
  std::unique_ptr<Configuration> gamma_mirror_;  // adaptive adversaries only

  // Incremental coverage bookkeeping (analyze_coverage semantics).
  std::vector<std::uint64_t> visit_counts_;
  std::vector<Time> last_visit_;
  std::vector<std::uint8_t> visited_;
  Time max_closed_gap_ = 0;
  EngineStats stats_;

  std::unique_ptr<Trace> trace_;
};

}  // namespace pef
