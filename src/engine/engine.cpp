#include "engine/engine.hpp"

#include <algorithm>

#include "algorithms/kernels.hpp"
#include "common/check.hpp"

namespace pef {
namespace {

/// ComputeFn for virtual dispatch: the canonical Algorithm interface.
struct VirtualCompute {
  const Algorithm* algorithm;
  std::unique_ptr<AlgorithmState>* states;
  void operator()(RobotId i, const View& view, LocalDirection& dir) const {
    algorithm->compute(view, dir, *states[i]);
  }
};

/// ComputeFn for kernel dispatch: the KernelId is a template argument, so
/// each engine loop instantiation inlines the kernel body directly.
template <KernelId Id>
struct KernelCompute {
  const KernelSpec* spec;
  KernelState* states;
  void operator()(RobotId i, const View& view, LocalDirection& dir) const {
    kernel_compute<Id>(*spec, view, dir, states[i]);
  }
};

}  // namespace

std::optional<ExecutionModel> parse_execution_model(const std::string& name) {
  if (name == "fsync") return ExecutionModel::kFsync;
  if (name == "ssync") return ExecutionModel::kSsync;
  if (name == "async") return ExecutionModel::kAsync;
  return std::nullopt;
}

Engine::Engine(Ring ring, AlgorithmPtr algorithm, AdversaryPtr adversary,
               const std::vector<RobotPlacement>& placements,
               EngineOptions options)
    : ring_(ring),
      algorithm_(std::move(algorithm)),
      model_(ExecutionModel::kFsync),
      options_(options),
      adversary_(std::move(adversary)) {
  PEF_CHECK(adversary_ != nullptr);
  PEF_CHECK(adversary_->ring() == ring_);
  init(placements);

  // Oblivious adversaries never look at gamma: bypass the Configuration
  // mirror entirely and fill the scratch EdgeSet in place each round.
  if (const auto* oblivious =
          dynamic_cast<const ObliviousAdversary*>(adversary_.get())) {
    schedule_ = oblivious->schedule().get();
  } else {
    gamma_mirror_ = std::make_unique<Configuration>(snapshot());
  }
}

Engine::Engine(Ring ring, AlgorithmPtr algorithm,
               std::unique_ptr<SsyncAdversary> adversary,
               std::unique_ptr<ActivationPolicy> activation,
               const std::vector<RobotPlacement>& placements,
               EngineOptions options)
    : ring_(ring),
      algorithm_(std::move(algorithm)),
      model_(ExecutionModel::kSsync),
      options_(options),
      ssync_adversary_(std::move(adversary)),
      activation_(std::move(activation)) {
  PEF_CHECK(ssync_adversary_ != nullptr);
  PEF_CHECK(activation_ != nullptr);
  PEF_CHECK(ssync_adversary_->ring() == ring_);
  init(placements);
  // Policies and SSYNC adversaries see gamma every round: keep one
  // persistent mirror, updated in place as robots act.
  gamma_mirror_ = std::make_unique<Configuration>(snapshot());
}

Engine::Engine(Ring ring, AlgorithmPtr algorithm,
               std::unique_ptr<SsyncAdversary> adversary,
               std::unique_ptr<PhaseScheduler> phases,
               const std::vector<RobotPlacement>& placements,
               EngineOptions options)
    : ring_(ring),
      algorithm_(std::move(algorithm)),
      model_(ExecutionModel::kAsync),
      options_(options),
      ssync_adversary_(std::move(adversary)),
      phase_scheduler_(std::move(phases)) {
  PEF_CHECK(ssync_adversary_ != nullptr);
  PEF_CHECK(phase_scheduler_ != nullptr);
  PEF_CHECK(ssync_adversary_->ring() == ring_);
  init(placements);
  phases_.assign(node_.size(), Phase::kLook);
  pending_views_.assign(node_.size(), View{});
  gamma_mirror_ = std::make_unique<Configuration>(snapshot());
}

void Engine::init(const std::vector<RobotPlacement>& placements) {
  PEF_CHECK(algorithm_ != nullptr);
  PEF_CHECK(!placements.empty());

  if (options_.enforce_well_initiated) {
    PEF_CHECK_MSG(placements.size() < ring_.node_count(),
                  "well-initiated executions need k < n");
    for (std::size_t a = 0; a < placements.size(); ++a) {
      for (std::size_t b = a + 1; b < placements.size(); ++b) {
        PEF_CHECK_MSG(placements[a].node != placements[b].node,
                      "well-initiated executions start towerless");
      }
    }
  }

  if (options_.dispatch != ComputeDispatch::kVirtual) {
    kernel_ = algorithm_->kernel();
  }
  PEF_CHECK_MSG(
      !(options_.dispatch == ComputeDispatch::kKernel && !kernel_),
      "kernel dispatch requested but the algorithm provides no kernel");

  occ_.assign(ring_.node_count(), 0);
  edges_ = EdgeSet(ring_.edge_count());
  visit_counts_.assign(ring_.node_count(), 0);
  last_visit_.assign(ring_.node_count(), 0);
  visited_.assign(ring_.node_count(), 0);

  const auto k = static_cast<std::uint32_t>(placements.size());
  node_.reserve(k);
  dir_.reserve(k);
  right_cw_.reserve(k);
  moved_.assign(k, 0);
  if (kernel_) {
    kstates_.resize(k);
  } else {
    states_.reserve(k);
  }
  for (std::uint32_t i = 0; i < k; ++i) {
    PEF_CHECK(ring_.is_valid_node(placements[i].node));
    node_.push_back(placements[i].node);
    dir_.push_back(static_cast<std::uint8_t>(LocalDirection::kLeft));
    right_cw_.push_back(placements[i].chirality.right_is_clockwise() ? 1 : 0);
    if (kernel_) {
      init_kernel_state(*kernel_, static_cast<RobotId>(i), kstates_[i]);
    } else {
      states_.push_back(algorithm_->make_state(static_cast<RobotId>(i)));
    }
    if (++occ_[placements[i].node] == 2) ++multi_nodes_;
  }

  observe_boundary(0);
  if (options_.record_trace) {
    trace_ = std::make_unique<Trace>(ring_, snapshot());
  }
}

const AlgorithmState& Engine::robot_state(RobotId r) const {
  PEF_CHECK_MSG(!kernel_,
                "robot_state() is only available under virtual dispatch");
  return *states_[r];
}

Phase Engine::phase_of(RobotId r) const {
  PEF_CHECK_MSG(model_ == ExecutionModel::kAsync,
                "phase_of() is only available on ASYNC engines");
  return phases_[r];
}

Adversary& Engine::adversary() {
  PEF_CHECK_MSG(model_ == ExecutionModel::kFsync,
                "adversary() is only available on FSYNC engines");
  return *adversary_;
}

Configuration Engine::snapshot() const {
  std::vector<RobotSnapshot> snaps;
  snaps.reserve(node_.size());
  for (std::size_t i = 0; i < node_.size(); ++i) {
    RobotSnapshot s;
    s.node = node_[i];
    s.dir = static_cast<LocalDirection>(dir_[i]);
    s.chirality = Chirality(right_cw_[i] != 0);
    snaps.push_back(std::move(s));
  }
  return Configuration(ring_, std::move(snaps));
}

void Engine::observe_boundary(Time t) {
  const std::uint32_t n = ring_.node_count();
  for (const NodeId u : node_) {
    ++visit_counts_[u];
    if (visited_[u]) {
      const Time gap = t - last_visit_[u];
      max_closed_gap_ = std::max(max_closed_gap_, gap);
    } else {
      visited_[u] = 1;
      if (++stats_.visited_node_count == n && !stats_.cover_time) {
        stats_.cover_time = t;
      }
    }
    last_visit_[u] = t;
  }
  if (multi_nodes_ > 0) {
    ++stats_.tower_rounds;
    if (!prev_had_tower_) ++stats_.tower_formations;
    prev_had_tower_ = true;
  } else {
    prev_had_tower_ = false;
  }
}

Engine::RobotFrame Engine::frame_of(RobotId i) const {
  const NodeId u = node_[i];
  const bool dir_right = dir_[i] != 0;
  // to_global(dir): right == right_is_clockwise ? cw : ccw.
  const bool ahead_cw = dir_right == (right_cw_[i] != 0);
  const EdgeId edge_cw = u;
  const EdgeId edge_ccw = u == 0 ? ring_.node_count() - 1 : u - 1;
  return {u, ahead_cw, ahead_cw ? edge_cw : edge_ccw,
          ahead_cw ? edge_ccw : edge_cw};
}

View Engine::look(const RobotFrame& frame) const {
  View view;
  view.exists_edge_ahead = edges_.contains_unchecked(frame.ahead);
  view.exists_edge_behind = edges_.contains_unchecked(frame.behind);
  view.other_robots_on_node = occ_[frame.node] > 1;
  return view;
}

bool Engine::apply_move(RobotId i, bool ahead_cw, EdgeId pointed) {
  if (!edges_.contains_unchecked(pointed)) return false;
  const std::uint32_t n = ring_.node_count();
  const NodeId u = node_[i];
  const NodeId to =
      ahead_cw ? (u + 1 == n ? 0 : u + 1) : (u == 0 ? n - 1 : u - 1);
  if (--occ_[u] == 1) --multi_nodes_;
  if (++occ_[to] == 2) ++multi_nodes_;
  node_[i] = to;
  ++stats_.total_moves;
  return true;
}

void Engine::step() {
  switch (model_) {
    case ExecutionModel::kFsync:
      step_fsync();
      break;
    case ExecutionModel::kSsync:
      step_ssync();
      break;
    case ExecutionModel::kAsync:
      step_async();
      break;
  }
  ++now_;
  stats_.rounds = now_;
  observe_boundary(now_);
}

template <typename ComputeFn>
void Engine::look_compute_all(const ComputeFn& compute_fn) {
  const auto k = static_cast<std::uint32_t>(node_.size());
  for (std::uint32_t i = 0; i < k; ++i) {
    const View view = look(frame_of(i));
    LocalDirection dir = static_cast<LocalDirection>(dir_[i]);
    compute_fn(i, view, dir);
    dir_[i] = static_cast<std::uint8_t>(dir);
  }
}

template <typename ComputeFn>
void Engine::look_compute_list(const ComputeFn& compute_fn,
                               const std::vector<std::uint32_t>& idx) {
  for (const std::uint32_t i : idx) {
    const View view = look(frame_of(i));
    LocalDirection dir = static_cast<LocalDirection>(dir_[i]);
    compute_fn(i, view, dir);
    dir_[i] = static_cast<std::uint8_t>(dir);
  }
}

template <typename ComputeFn>
void Engine::compute_pending_list(const ComputeFn& compute_fn,
                                  const std::vector<std::uint32_t>& idx) {
  for (const std::uint32_t i : idx) {
    LocalDirection dir = static_cast<LocalDirection>(dir_[i]);
    compute_fn(i, pending_views_[i], dir);
    dir_[i] = static_cast<std::uint8_t>(dir);
    phases_[i] = Phase::kMove;
  }
}

void Engine::step_fsync() {
  const auto k = static_cast<std::uint32_t>(node_.size());

  // Adversary: E_t.  Oblivious schedules refill the scratch set in place.
  if (schedule_ != nullptr) {
    schedule_->edges_into(now_, edges_);
  } else {
    edges_ = adversary_->choose_edges(now_, *gamma_mirror_);
    PEF_CHECK(edges_.edge_count() == ring_.edge_count());
  }

  RoundRecord record;
  const bool tracing = trace_ != nullptr;
  if (tracing) {
    record.time = now_;
    record.edges = edges_;
    record.robots.resize(k);
    // The Look phase reads the start-of-round configuration, so every
    // view's multiplicity bit is reconstructable here, before any robot
    // acts: trace bookkeeping stays out of the per-kernel loop.
    for (std::uint32_t i = 0; i < k; ++i) {
      record.robots[i].node_before = node_[i];
      record.robots[i].dir_before = static_cast<LocalDirection>(dir_[i]);
      record.robots[i].saw_other_robots = occ_[node_[i]] > 1;
    }
  }

  // Look + Compute.  The Look phase reads only node_/occ_/edges_, none of
  // which change before Move, so fusing the two phases preserves the
  // synchronous semantics; Compute writes only the robot's own dir/state.
  if (kernel_) {
    with_kernel_id(kernel_->id, [&]<KernelId Id>() {
      look_compute_all(KernelCompute<Id>{&*kernel_, kstates_.data()});
    });
  } else {
    look_compute_all(VirtualCompute{algorithm_.get(), states_.data()});
  }

  // Move: cross the pointed edge iff present in E_t (same set all round).
  // Sequential in-place update is safe: Look already happened for everyone.
  for (std::uint32_t i = 0; i < k; ++i) {
    const RobotFrame frame = frame_of(i);
    const bool moved = apply_move(i, frame.ahead_cw, frame.ahead);
    moved_[i] = moved ? 1 : 0;
    if (tracing) {
      record.robots[i].dir_after = static_cast<LocalDirection>(dir_[i]);
      record.robots[i].moved = moved;
      record.robots[i].node_after = node_[i];
    }
  }

  // Keep the adaptive adversary's gamma mirror current (it must equal the
  // configuration at the start of the next round).
  if (gamma_mirror_) {
    for (std::uint32_t i = 0; i < k; ++i) {
      gamma_mirror_->set_robot_dir(i, static_cast<LocalDirection>(dir_[i]));
      if (moved_[i]) gamma_mirror_->relocate_robot(i, node_[i]);
    }
  }

  if (tracing) trace_->append(std::move(record));
}

void Engine::step_ssync() {
  const auto k = static_cast<std::uint32_t>(node_.size());

  activation_->activate(now_, *gamma_mirror_, mask_);
  PEF_CHECK(mask_.size() == k);
  ssync_adversary_->choose_edges_into(now_, *gamma_mirror_, mask_, edges_);
  PEF_CHECK(edges_.edge_count() == ring_.edge_count());

  // Compact the activation mask once, so the Look+Compute and Move loops
  // iterate dense indices instead of re-testing (and mispredicting) the
  // mask per robot per pass.
  active_list_.clear();
  for (std::uint32_t i = 0; i < k; ++i) {
    if (mask_[i] != 0) active_list_.push_back(i);
  }

  RoundRecord record;
  const bool tracing = trace_ != nullptr;
  if (tracing) {
    record.time = now_;
    record.edges = edges_;
    record.robots.resize(k);
    for (std::uint32_t i = 0; i < k; ++i) {
      record.robots[i].node_before = node_[i];
      record.robots[i].dir_before = static_cast<LocalDirection>(dir_[i]);
      record.robots[i].node_after = node_[i];
      record.robots[i].dir_after = static_cast<LocalDirection>(dir_[i]);
    }
    // Activated robots' Looks all read the start-of-round occupancy.
    for (const std::uint32_t i : active_list_) {
      record.robots[i].saw_other_robots = occ_[node_[i]] > 1;
    }
  }

  // Look + Compute for the activated subset.  As in FSYNC, every activated
  // robot's Look reads the start-of-round configuration (occ_/node_ are
  // untouched until the Move pass below).
  if (kernel_) {
    with_kernel_id(kernel_->id, [&]<KernelId Id>() {
      look_compute_list(KernelCompute<Id>{&*kernel_, kstates_.data()},
                        active_list_);
    });
  } else {
    look_compute_list(VirtualCompute{algorithm_.get(), states_.data()},
                      active_list_);
  }

  // The policies and adversaries only read the gamma mirror at the next
  // round boundary, so the per-robot dir updates batch up fine here.
  for (const std::uint32_t i : active_list_) {
    const auto dir = static_cast<LocalDirection>(dir_[i]);
    gamma_mirror_->set_robot_dir(i, dir);
    if (tracing) record.robots[i].dir_after = dir;
  }

  // Move for the activated subset.
  for (const std::uint32_t i : active_list_) {
    const RobotFrame frame = frame_of(i);
    if (apply_move(i, frame.ahead_cw, frame.ahead)) {
      gamma_mirror_->relocate_robot(i, node_[i]);
      if (tracing) record.robots[i].moved = true;
    }
    if (tracing) record.robots[i].node_after = node_[i];
  }

  if (tracing) trace_->append(std::move(record));
}

void Engine::step_async() {
  const auto k = static_cast<std::uint32_t>(node_.size());

  phase_scheduler_->advance(now_, *gamma_mirror_, phases_, mask_);
  PEF_CHECK(mask_.size() == k);

  // The adversary sees which robots fire their Move phase this tick (the
  // only phase that interacts with edges).  One pass splits the advancing
  // set into its three per-phase index lists.
  moving_.assign(k, 0);
  look_list_.clear();
  compute_list_.clear();
  move_list_.clear();
  for (std::uint32_t i = 0; i < k; ++i) {
    if (mask_[i] == 0) continue;
    switch (phases_[i]) {
      case Phase::kLook:
        look_list_.push_back(i);
        break;
      case Phase::kCompute:
        compute_list_.push_back(i);
        break;
      case Phase::kMove:
        moving_[i] = 1;
        move_list_.push_back(i);
        break;
    }
  }
  ssync_adversary_->choose_edges_into(now_, *gamma_mirror_, moving_, edges_);
  PEF_CHECK(edges_.edge_count() == ring_.edge_count());

  RoundRecord record;
  const bool tracing = trace_ != nullptr;
  if (tracing) {
    record.time = now_;
    record.edges = edges_;
    record.robots.resize(k);
    for (std::uint32_t i = 0; i < k; ++i) {
      record.robots[i].node_before = node_[i];
      record.robots[i].dir_before = static_cast<LocalDirection>(dir_[i]);
      record.robots[i].node_after = node_[i];
      record.robots[i].dir_after = static_cast<LocalDirection>(dir_[i]);
    }
  }

  // Pass 1a: Look phases.  No robot has moved yet this tick, so occ_ is
  // exactly the tick-start occupancy every Look must see; Move phases
  // (already split into move_list_) run in pass 2.  The snapshot may be
  // stale by the time Compute / Move execute — that is the model.
  for (const std::uint32_t i : look_list_) {
    const View view = look(frame_of(i));
    pending_views_[i] = view;
    if (tracing) record.robots[i].saw_other_robots = view.other_robots_on_node;
    phases_[i] = Phase::kCompute;
  }

  // Pass 1b: Compute phases — the only ASYNC work that touches the
  // algorithm, and therefore the only templated loop.
  if (kernel_) {
    with_kernel_id(kernel_->id, [&]<KernelId Id>() {
      compute_pending_list(KernelCompute<Id>{&*kernel_, kstates_.data()},
                           compute_list_);
    });
  } else {
    compute_pending_list(VirtualCompute{algorithm_.get(), states_.data()},
                         compute_list_);
  }
  for (const std::uint32_t i : compute_list_) {
    const auto dir = static_cast<LocalDirection>(dir_[i]);
    gamma_mirror_->set_robot_dir(i, dir);
    if (tracing) record.robots[i].dir_after = dir;
  }

  // Pass 2: Move phases.
  for (const std::uint32_t i : move_list_) {
    const RobotFrame frame = frame_of(i);
    if (apply_move(i, frame.ahead_cw, frame.ahead)) {
      gamma_mirror_->relocate_robot(i, node_[i]);
      if (tracing) record.robots[i].moved = true;
    }
    if (tracing) record.robots[i].node_after = node_[i];
    phases_[i] = Phase::kLook;
  }

  if (tracing) trace_->append(std::move(record));
}

void Engine::run(Time rounds) {
  const Time target = now_ + rounds;
  if (options_.fast_forward.enabled && ff_eligible()) {
    run_fast_forward(target);
    return;
  }
  while (now_ < target) step();
}

bool Engine::ff_eligible() {
  // Every excluded component would make the sampled state an incomplete
  // description of the future: a trace must record each round; virtual
  // dispatch hides algorithm memory behind heap AlgorithmState; Bernoulli
  // activation and adaptive adversaries consume unbounded RNG / observe
  // positions, so their future is not a function of the sampled state.
  if (options_.record_trace || !kernel_.has_value()) return false;

  const EdgeSchedule* schedule = nullptr;
  Time activation_period = 1;
  switch (model_) {
    case ExecutionModel::kFsync:
      schedule = schedule_;  // non-null iff the adversary is oblivious
      break;
    case ExecutionModel::kSsync: {
      schedule = ssync_adversary_->oblivious_schedule();
      const ActivationBatchKind kind = activation_->batch_kind();
      if (kind == ActivationBatchKind::kRoundRobin) {
        activation_period = robot_count();
      } else if (kind != ActivationBatchKind::kFull) {
        return false;  // Bernoulli or unknown virtual policy
      }
      break;
    }
    case ExecutionModel::kAsync: {
      schedule = ssync_adversary_->oblivious_schedule();
      const ActivationBatchKind kind = phase_scheduler_->batch_kind();
      if (kind == ActivationBatchKind::kRoundRobin) {
        activation_period = robot_count();
      } else if (kind != ActivationBatchKind::kFull) {
        return false;
      }
      break;
    }
  }
  if (schedule == nullptr) return false;
  const ScheduleRecurrence recurrence = schedule->recurrence();
  if (recurrence.period == 0) return false;
  const Time env_period =
      combine_recurrence_periods(recurrence.period, activation_period);
  if (env_period == 0 || env_period > kMaxEnvPeriod) return false;
  ff_env_period_ = env_period;
  ff_env_start_ = recurrence.start;
  return true;
}

void Engine::pack_state(std::vector<std::uint64_t>& out) const {
  out.clear();
  const std::uint32_t k = robot_count();
  const bool rng_state = kernel_->id == KernelId::kRandomWalk;
  for (std::uint32_t i = 0; i < k; ++i) {
    out.push_back((static_cast<std::uint64_t>(node_[i]) << 32) |
                  (static_cast<std::uint64_t>(dir_[i]) << 1) |
                  right_cw_[i]);
    const KernelState& ks = kstates_[i];
    out.push_back(ks.counter);
    out.push_back(ks.has_moved);
    if (rng_state) {
      for (const std::uint64_t word : ks.rng.state()) out.push_back(word);
    }
  }
  if (model_ == ExecutionModel::kAsync) {
    // Phase machines + pending Look views.  Views of robots past their
    // Compute are stale-but-deterministic, so including them only tightens
    // the equality test (false negatives delay detection; never wrong).
    for (std::uint32_t i = 0; i < k; ++i) {
      const View& view = pending_views_[i];
      out.push_back((static_cast<std::uint64_t>(phases_[i]) << 3) |
                    (static_cast<std::uint64_t>(view.exists_edge_ahead) << 2) |
                    (static_cast<std::uint64_t>(view.exists_edge_behind) << 1) |
                    static_cast<std::uint64_t>(view.other_robots_on_node));
    }
  }
}

void Engine::run_fast_forward(Time target) {
  BrentDetector detector(options_.fast_forward.hash_mask);
  std::vector<std::uint64_t> packed;
  Time period = 0;
  while (now_ < target) {
    if (now_ >= ff_env_start_ &&
        (now_ - ff_env_start_) % ff_env_period_ == 0) {
      pack_state(packed);
      StateHash hash;
      for (const std::uint64_t word : packed) hash.add(word);
      const Time samples = detector.observe(packed, hash.value);
      if (samples > 0) {
        period = samples * ff_env_period_;
        break;
      }
    }
    step();
  }
  ff_collisions_ = detector.collisions();
  // Detection at t2 proves states repeat with `period`, but stats are not
  // yet extrapolable: a revisit gap that wraps the detection point has not
  // closed, so max_closed_gap could still grow.  Run ONE more full period
  // live — by t3 = t2 + period every steady-state inter-visit gap (each at
  // most `period` long) has materialized, and the deltas over (t2, t3] are
  // the exact per-period increments of every remaining statistic (visit
  // counts and rising-edge tower counts over one period are independent of
  // where in the cycle the window starts).
  if (period == 0 || target - now_ < 2 * period) {
    while (now_ < target) step();
    return;
  }
  ff_detected_period_ = period;
  const std::vector<std::uint64_t> snap_counts = visit_counts_;
  const std::uint64_t snap_moves = stats_.total_moves;
  const Time snap_tower_rounds = stats_.tower_rounds;
  const std::uint64_t snap_formations = stats_.tower_formations;
  for (Time i = 0; i < period; ++i) step();

  const Time remaining = target - now_;
  const Time reps = remaining / period;
  const Time skip = period * reps;
  const std::uint32_t n = ring_.node_count();
  for (NodeId u = 0; u < n; ++u) {
    const std::uint64_t delta = visit_counts_[u] - snap_counts[u];
    if (delta == 0) continue;
    visit_counts_[u] += delta * reps;
    // The node's visit pattern is period-periodic: its true last visit in
    // the skipped region sits exactly `skip` after the one just recorded.
    last_visit_[u] += skip;
  }
  stats_.total_moves += (stats_.total_moves - snap_moves) * reps;
  stats_.tower_rounds += (stats_.tower_rounds - snap_tower_rounds) * reps;
  stats_.tower_formations +=
      (stats_.tower_formations - snap_formations) * reps;
  now_ += skip;
  stats_.rounds = now_;
  ff_skipped_ = skip;
  // The state at t3 equals the state at t3 + skip, and skip is a multiple
  // of the environment period, so replaying the tail at the advanced clock
  // reproduces the true final rounds bit-for-bit (visited / cover_time are
  // monotone and already settled within the first full period).
  while (now_ < target) step();
}

CoverageReport Engine::coverage_report(Time suffix_window) const {
  const std::uint32_t n = ring_.node_count();
  CoverageReport report;
  report.horizon = now_;
  report.suffix_window = suffix_window == 0 ? now_ / 4 + 1 : suffix_window;
  report.visit_counts = visit_counts_;
  report.visited_node_count = stats_.visited_node_count;
  report.cover_time = stats_.cover_time;
  report.max_closed_gap = max_closed_gap_;

  const Time suffix_start =
      now_ >= report.suffix_window ? now_ - report.suffix_window : 0;
  for (NodeId u = 0; u < n; ++u) {
    const Time open_gap = visited_[u] ? now_ - last_visit_[u] : now_;
    report.max_revisit_gap =
        std::max({report.max_revisit_gap, report.max_closed_gap, open_gap});
    if (visited_[u] && last_visit_[u] >= suffix_start) {
      ++report.nodes_visited_in_suffix;
    }
  }
  return report;
}

}  // namespace pef
