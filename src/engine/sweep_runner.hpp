// SweepRunner — the multi-core Monte-Carlo sweep harness.
//
// A sweep is described by a data-only SweepSpec (core/spec.hpp): the
// cartesian grid (algorithm × adversary × model × n × k × seed); each grid
// cell is one independent engine run.  Cells that differ ONLY in seed are
// one scenario run many times — exactly BatchEngine's shape — so the runner
// dispatches each such seed group to one replica batch (per-seed results
// stay bit-identical to solo Engine runs; the differential tests pin this)
// instead of constructing a fresh Engine per seed.  A fixed-size pool of
// worker threads pulls seed-group indices in CHUNKS from an atomic cursor
// (one-group-per-fetch ping-pongs the cursor cache line on small grids),
// grids below a work threshold skip the pool entirely, and the thread count
// is clamped to the hardware — while the *results* cannot depend on
// scheduling:
//
//   * every cell derives its own RNG stream deterministically from its grid
//     coordinates (see effective_seed below), never from thread identity,
//     wall clock or execution order;
//   * results land in a preallocated slot indexed by cell id, so the output
//     vector (and hence the JSON) is byte-identical at 1 and N threads,
//     batched or not.
//
// Because a cell's results are a pure function of the spec and its cell
// index, a sweep also shards across PROCESSES: run(spec, {i, N}) executes
// only the i-th contiguous slice of the cell list, to_shard_json() wraps
// that slice with its coordinates, and merge_sweep_shards() concatenates N
// such slices back into JSON byte-identical to the unsharded run
// (tools/pef_sweep.cpp is the CLI; tests/sweep_shard_test.cpp pins the
// equality against the golden baseline).
//
// Per-cell wall-times are measured for throughput reporting but deliberately
// kept out of the deterministic JSON (batched cells report their share of
// the batch wall-time).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "core/experiment.hpp"

namespace pef {

/// One fully-run grid cell.
struct SweepCell {
  // Grid coordinates.
  std::string algorithm;
  std::string adversary;
  ExecutionModel model = ExecutionModel::kFsync;
  std::uint32_t nodes = 0;
  std::uint32_t robots = 0;
  std::uint64_t seed = 0;           // the grid seed entry
  std::uint64_t effective_seed = 0; // derived per-cell stream seed
  Time horizon = 0;

  // Deterministic metrics (in the JSON).
  bool perpetual = false;
  bool covered = false;
  Time cover_time = 0;  // valid iff covered
  Time max_revisit_gap = 0;
  Time tower_rounds = 0;
  std::uint64_t tower_formations = 0;
  std::uint64_t total_moves = 0;

  // Fast-forward telemetry, nonzero only when the cycle detector engaged on
  // this cell (spec.fast_forward on an eligible deterministic cell):
  // rounds_covered is the span the statistics describe (== horizon) and
  // rounds_simulated the rounds actually stepped.  Serialized only when
  // engaged so plain sweeps stay byte-identical to pre-fast-forward output.
  Time rounds_covered = 0;
  Time rounds_simulated = 0;

  // Timing (excluded from the deterministic JSON).
  double wall_seconds = 0;
  [[nodiscard]] double rounds_per_sec() const {
    return wall_seconds > 0 ? static_cast<double>(horizon) / wall_seconds : 0;
  }
};

/// Append one cell as a JSON object — the single definition of the per-cell
/// JSON shape, shared by full results, shard files and the shard merge.
void sweep_cell_to_json(JsonWriter& json, const SweepCell& cell);

/// Invert sweep_cell_to_json (for the shard merge).  Strict: every field
/// required, unknown keys rejected.
[[nodiscard]] std::optional<SweepCell> sweep_cell_from_json(
    const JsonValue& value, std::string* error);

/// A contiguous slice of the sweep's cell list: shard `index` of `count`
/// runs cells [floor(index*C/count), floor((index+1)*C/count)).  The
/// default is the whole sweep.
struct SweepShard {
  std::uint32_t index = 0;
  std::uint32_t count = 1;
};

struct SweepResult {
  std::vector<SweepCell> cells;  // grid order, independent of thread count
  /// Which slice of the grid `cells` covers (first_cell == 0 and
  /// total_cells == cells.size() for an unsharded run).
  std::uint64_t first_cell = 0;
  std::uint64_t total_cells = 0;
  SweepShard shard;
  /// Canonical JSON of the spec that was run; embedded in shard files so
  /// merge_sweep_shards can refuse to stitch shards of different sweeps.
  std::string spec_json;

  double wall_seconds = 0;
  std::uint32_t threads = 0;

  /// True when a cancel callback stopped the run between seed groups.  The
  /// result is then partial (un-run cells keep default values) and must not
  /// be serialized with to_json()/to_shard_json().
  bool cancelled = false;

  [[nodiscard]] std::uint64_t total_rounds() const;
  [[nodiscard]] double rounds_per_sec() const {
    return wall_seconds > 0
               ? static_cast<double>(total_rounds()) / wall_seconds
               : 0;
  }

  /// Machine-readable per-cell results.  Contains only deterministic fields:
  /// byte-identical for identical specs regardless of thread count.  Aborts
  /// on a partial (sharded) result — write those with to_shard_json().
  [[nodiscard]] std::string to_json() const;

  /// Shard output: the same deterministic cells plus the shard coordinates
  /// merge_sweep_shards() needs to stitch slices back together.
  [[nodiscard]] std::string to_shard_json() const;
};

/// Merge the outputs of N shard runs (each a to_shard_json() document, in
/// any order) into the unsharded to_json() document — byte-identical to
/// running the whole spec in one process.  Returns nullopt (with an
/// actionable message) on missing/duplicate/inconsistent shards.
///
/// When `missing_shards` is non-null it receives the indices of the
/// partition (0..shard_count-1, taken from the given shards' envelopes)
/// that no given file covers — the retry list a shard launcher needs to
/// re-run exactly the lost work (pef_sweep --merge surfaces it as the
/// "missing_shards" JSON field).  Cleared on success.
///
/// When `shard_names` is non-null (parallel to `shard_jsons`, e.g. file
/// paths) error messages name the offending inputs; otherwise they say
/// "shard file <position>".
[[nodiscard]] std::optional<std::string> merge_sweep_shards(
    const std::vector<std::string>& shard_jsons, std::string* error,
    std::vector<std::uint32_t>* missing_shards = nullptr,
    const std::vector<std::string>* shard_names = nullptr);

/// A merge that tolerates missing shards (pef_sweep --merge
/// --allow-partial, and the orchestrator's graceful degradation).
struct ShardMerge {
  /// True when every shard of the partition was present — `json` is then
  /// exactly the merge_sweep_shards() document.
  bool complete = false;
  /// Complete: the canonical unsharded document.  Partial: the documented
  /// degraded shape —
  ///   {"partial": true, "cell_count": P, "total_cells": T,
  ///    "missing_shards": [..], "cells": [...]}
  /// where "cells" has exactly T entries in grid order and every cell of a
  /// missing shard is an explicit `null` (so cell index == array index
  /// survives degradation), and P counts the non-null cells.
  std::string json;
  std::vector<std::uint32_t> missing_shards;  // empty iff complete
};

/// Like merge_sweep_shards() but missing shards degrade the output instead
/// of failing it.  Inconsistent input is still a hard error (nullopt):
/// duplicate shard indices, shards of different sweeps (mismatched spec),
/// disagreeing partition envelopes, out-of-range indices, and slices that
/// do not sit where the partition formula puts them — all named by file.
[[nodiscard]] std::optional<ShardMerge> merge_sweep_shards_partial(
    const std::vector<std::string>& shard_jsons, std::string* error,
    const std::vector<std::string>* shard_names = nullptr);

/// Number of grid cells the spec enumerates (k >= n pairs are skipped) —
/// the progress denominator a serving layer can report before running.
[[nodiscard]] std::uint64_t count_sweep_cells(const SweepSpec& spec);

/// The per-cell stream seed: mixes the grid seed entry with every coordinate
/// index so distinct cells never share an RNG stream, and a cell's stream is
/// a pure function of its coordinates (thread-count independent).
[[nodiscard]] std::uint64_t effective_seed(std::uint64_t grid_seed,
                                           std::size_t algorithm_index,
                                           std::size_t adversary_index,
                                           std::uint32_t nodes,
                                           std::uint32_t robots,
                                           std::size_t model_index = 0);

class SweepRunner {
 public:
  /// `threads` == 0 picks std::thread::hardware_concurrency().
  /// `engine_threads` is the intra-cell worker count handed to each
  /// BatchEngine (1 = serial batches, 0 = one per physical core); results
  /// are bit-identical at any value — it only matters when the grid is
  /// narrower than the machine.
  explicit SweepRunner(std::uint32_t threads = 0,
                       std::uint32_t engine_threads = 1);

  [[nodiscard]] std::uint32_t threads() const { return threads_; }
  [[nodiscard]] std::uint32_t engine_threads() const {
    return engine_threads_;
  }

  /// Progress observer: invoked after each completed seed group with the
  /// cumulative number of finished cells, the shard's cell total, and the
  /// wall seconds the group just took.  Called from worker threads (under
  /// no lock), so implementations must be thread-safe; `done` is monotone
  /// per call site but calls may interleave out of order across groups.
  using ProgressFn = std::function<void(
      std::uint64_t done, std::uint64_t total, double group_wall_seconds)>;

  /// Cooperative cancellation: polled between seed groups (never inside an
  /// engine run, so cells finish whole).  Return true to stop the sweep —
  /// the result comes back with `cancelled` set.  Called from worker
  /// threads; must be thread-safe (an atomic flag read is the intended
  /// shape).
  using CancelFn = std::function<bool()>;

  /// Run the spec's cells — all of them, or one contiguous shard.  Blocks
  /// until done.  Aborts on specs that fail validate().  The progress
  /// observer is purely informational: results are byte-identical with or
  /// without it.
  [[nodiscard]] SweepResult run(const SweepSpec& spec, SweepShard shard = {},
                                const ProgressFn& progress = nullptr,
                                const CancelFn& cancel = nullptr) const;

 private:
  std::uint32_t threads_;
  std::uint32_t engine_threads_;
};

}  // namespace pef
