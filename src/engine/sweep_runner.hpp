// SweepRunner — the multi-core Monte-Carlo sweep harness.
//
// A sweep is the cartesian grid (algorithm × adversary × model × n × k ×
// seed); each grid cell is one independent engine run.  Cells that differ
// ONLY in seed are one scenario run many times — exactly BatchEngine's
// shape — so the runner dispatches each such seed group to one replica
// batch (per-seed results stay bit-identical to solo Engine runs; the
// differential tests pin this) instead of constructing a fresh Engine per
// seed.  A fixed-size pool of worker threads pulls seed-group indices in
// CHUNKS from an atomic cursor (one-group-per-fetch ping-pongs the cursor
// cache line on small grids), grids below a work threshold skip the pool
// entirely, and the thread count is clamped to the hardware — while the
// *results* cannot depend on scheduling:
//
//   * every cell derives its own RNG stream deterministically from its grid
//     coordinates (see effective_seed below), never from thread identity,
//     wall clock or execution order;
//   * results land in a preallocated slot indexed by cell id, so the output
//     vector (and hence the JSON) is byte-identical at 1 and N threads,
//     batched or not.
//
// Per-cell wall-times are measured for throughput reporting but deliberately
// kept out of the deterministic JSON (batched cells report their share of
// the batch wall-time).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "engine/fast_engine.hpp"

namespace pef {

struct SweepGrid {
  std::vector<std::string> algorithms;
  std::vector<AdversarySpec> adversaries;
  /// Execution models to sweep.  SSYNC cells run under seeded Bernoulli
  /// activation, ASYNC cells under seeded Bernoulli phase advancement (see
  /// activation_p); FSYNC cells are identical to the pre-model-axis grid.
  std::vector<ExecutionModel> models = {ExecutionModel::kFsync};
  std::vector<std::uint32_t> ring_sizes;    // n
  std::vector<std::uint32_t> robot_counts;  // k; cells with k >= n are skipped
  std::vector<std::uint64_t> seeds;

  /// Per-robot selection probability of the SSYNC activation policy and the
  /// ASYNC phase scheduler (Bernoulli, derived-seeded per cell).
  double activation_p = 0.5;

  /// Horizon of one run: `horizon` rounds when nonzero, else
  /// `horizon_per_node * n`.
  Time horizon = 0;
  Time horizon_per_node = 200;

  /// Robot placements: uniformly random towerless nodes with random
  /// chiralities (seeded per cell) when true, evenly spread with common
  /// chirality when false.
  bool random_placements = true;

  /// Run each cell group that differs only in seed as one BatchEngine of
  /// per-seed replicas (when the algorithm has a kernel).  Per-seed results
  /// are bit-identical either way; this is purely a throughput knob.
  bool batch_seeds = true;

  /// Replica cap per BatchEngine; larger seed groups split into chunks.
  std::uint32_t max_batch = 64;

  [[nodiscard]] Time horizon_for(std::uint32_t n) const {
    return horizon != 0 ? horizon : horizon_per_node * n;
  }
};

/// One fully-run grid cell.
struct SweepCell {
  // Grid coordinates.
  std::string algorithm;
  std::string adversary;
  ExecutionModel model = ExecutionModel::kFsync;
  std::uint32_t nodes = 0;
  std::uint32_t robots = 0;
  std::uint64_t seed = 0;           // the grid seed entry
  std::uint64_t effective_seed = 0; // derived per-cell stream seed
  Time horizon = 0;

  // Deterministic metrics (in the JSON).
  bool perpetual = false;
  bool covered = false;
  Time cover_time = 0;  // valid iff covered
  Time max_revisit_gap = 0;
  Time tower_rounds = 0;
  std::uint64_t tower_formations = 0;
  std::uint64_t total_moves = 0;

  // Timing (excluded from the deterministic JSON).
  double wall_seconds = 0;
  [[nodiscard]] double rounds_per_sec() const {
    return wall_seconds > 0 ? static_cast<double>(horizon) / wall_seconds : 0;
  }
};

struct SweepResult {
  std::vector<SweepCell> cells;  // grid order, independent of thread count
  double wall_seconds = 0;
  std::uint32_t threads = 0;

  [[nodiscard]] std::uint64_t total_rounds() const;
  [[nodiscard]] double rounds_per_sec() const {
    return wall_seconds > 0
               ? static_cast<double>(total_rounds()) / wall_seconds
               : 0;
  }

  /// Machine-readable per-cell results.  Contains only deterministic fields:
  /// byte-identical for identical grids regardless of thread count.
  [[nodiscard]] std::string to_json() const;
};

/// The per-cell stream seed: mixes the grid seed entry with every coordinate
/// index so distinct cells never share an RNG stream, and a cell's stream is
/// a pure function of its coordinates (thread-count independent).
[[nodiscard]] std::uint64_t effective_seed(std::uint64_t grid_seed,
                                           std::size_t algorithm_index,
                                           std::size_t adversary_index,
                                           std::uint32_t nodes,
                                           std::uint32_t robots,
                                           std::size_t model_index = 0);

class SweepRunner {
 public:
  /// `threads` == 0 picks std::thread::hardware_concurrency().
  explicit SweepRunner(std::uint32_t threads = 0);

  [[nodiscard]] std::uint32_t threads() const { return threads_; }

  /// Run every cell of the grid; blocks until all are done.
  [[nodiscard]] SweepResult run(const SweepGrid& grid) const;

 private:
  std::uint32_t threads_;
};

}  // namespace pef
