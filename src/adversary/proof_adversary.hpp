// The staged lower-bound adversaries of Theorems 4.1 and 5.1, as adaptive
// state machines (the executable counterpart of Figures 2 and 3).
//
// The proofs confine k robots (k = 1 or 2) to a window of k+1 consecutive
// nodes {u, (v,) w} by an inductive surgery: at each *stage*, every
// non-designated robot is frozen (both its adjacent edges removed) and the
// designated robot is left with exactly one present adjacent edge pointing
// inward — the OneEdge(x, t_i, t'_i) situation of the paper.  Two outcomes:
//
//  * the designated robot eventually crosses its present edge (this is what
//    Lemma 4.1 / 5.1 guarantees for any *correct* algorithm): the stage
//    ends, the removal intervals close (finite), and the next stage begins.
//    Stages rotate exactly as in the paper's Items 1-8: with 2 robots the
//    designation switches whenever the designated robot lands on a window
//    boundary node, reproducing the (r2: v->w), (r1: u->v), (r1: v->u),
//    (r2: w->v) cycle; with 1 robot the single robot shuttles u <-> v.
//    The realized evolving graph has only finite, disjoint absence
//    intervals — it is connected-over-time — yet only k+1 < n nodes are
//    ever visited: a legal witness against the algorithm.
//
//  * the designated robot *camps*: it refuses to leave for `patience`
//    rounds, i.e. the algorithm violates the Lemma 4.1 / 5.1 departure
//    property.  The adversary then switches to *terminal mode*: it keeps
//    removing only the single edge the camper points at (which must be its
//    absent adjacent edge — a robot pointing at a present edge would have
//    moved) and restores everything else forever.  The realized graph has
//    exactly one eventually-missing edge — legal (a ring minus one edge is
//    a connected chain) — and the bench then verifies that coverage still
//    starves.  This mirrors the proof's dichotomy: an algorithm whose robot
//    waits forever under OneEdge is defeated by a single eventual missing
//    edge.
//
// The adversary logs every stage so benches can print the per-stage rows of
// Figures 2/3 (removed edge sets, durations, robot motion).
#pragma once

#include <optional>
#include <vector>

#include "adversary/adversary.hpp"

namespace pef {

class StagedProofAdversary final : public Adversary {
 public:
  struct StageRecord {
    Time start = 0;
    Time end = 0;  // round at whose start the designated robot had moved
    RobotId designated = 0;
    NodeId from = 0;
    NodeId to = 0;
    std::vector<EdgeId> removed_edges;  // the stage's removal set
  };

  /// Window = nodes {anchor, ..., anchor + width - 1} (clockwise).
  /// `width` must be robot_count + 1 and < n.  `patience` is the camping
  /// threshold (rounds a designated robot may hold still before the
  /// adversary concludes it camps forever and goes terminal).
  StagedProofAdversary(Ring ring, NodeId anchor, std::uint32_t width,
                       Time patience);

  [[nodiscard]] const Ring& ring() const override { return ring_; }
  [[nodiscard]] EdgeSet choose_edges(Time t,
                                     const Configuration& gamma) override;
  [[nodiscard]] std::string name() const override;

  // --- Reporting ----------------------------------------------------------

  [[nodiscard]] bool in_terminal_mode() const { return terminal_.has_value(); }
  [[nodiscard]] std::optional<EdgeId> terminal_edge() const {
    return terminal_;
  }
  [[nodiscard]] const std::vector<StageRecord>& stage_log() const {
    return stages_;
  }
  [[nodiscard]] std::size_t stages_completed() const { return stages_.size(); }

  [[nodiscard]] bool in_window(NodeId u) const;
  [[nodiscard]] EdgeId left_boundary_edge() const;
  [[nodiscard]] EdgeId right_boundary_edge() const;

 private:
  [[nodiscard]] std::uint32_t offset_of(NodeId u) const;
  [[nodiscard]] NodeId window_node(std::uint32_t offset) const;
  [[nodiscard]] bool is_boundary(NodeId u) const;
  void begin_stage(Time t, RobotId designated, const Configuration& gamma);
  [[nodiscard]] EdgeSet assemble_edges(const Configuration& gamma) const;

  Ring ring_;
  NodeId anchor_;
  std::uint32_t width_;
  Time patience_;

  bool initialised_ = false;
  RobotId designated_ = 0;
  Time stage_start_ = 0;
  NodeId stage_start_node_ = 0;
  std::vector<EdgeId> stage_removed_;  // removal set of the current stage
  std::vector<StageRecord> stages_;
  std::optional<EdgeId> terminal_;
};

}  // namespace pef
