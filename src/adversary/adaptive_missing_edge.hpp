// AdaptiveMissingEdgeAdversary ("sentinel trap"): the adaptive version of
// the eventual-missing-edge schedule.
//
// All edges are present until `trigger_time`; at the trigger the adversary
// inspects the configuration, kills the edge whose extremities are farthest
// from every robot, and keeps it missing forever.  Legal by construction
// (exactly one eventually-missing edge) and the single-trace behaviour that
// Section 3 of the paper is built around: any correct k >= 3 algorithm must
// end up posting sentinels at the two extremities (Lemma 3.7) while the
// remaining k - 2 explorers shuttle along the surviving chain.
#pragma once

#include <optional>

#include "adversary/adversary.hpp"

namespace pef {

class AdaptiveMissingEdgeAdversary final : public Adversary {
 public:
  AdaptiveMissingEdgeAdversary(Ring ring, Time trigger_time)
      : ring_(ring), trigger_time_(trigger_time) {}

  [[nodiscard]] const Ring& ring() const override { return ring_; }
  [[nodiscard]] EdgeSet choose_edges(Time t,
                                     const Configuration& gamma) override;
  [[nodiscard]] std::string name() const override {
    return "adaptive-missing(t=" + std::to_string(trigger_time_) + ")";
  }

  /// The edge chosen at the trigger; nullopt before.
  [[nodiscard]] std::optional<EdgeId> chosen_edge() const { return chosen_; }

 private:
  Ring ring_;
  Time trigger_time_;
  std::optional<EdgeId> chosen_;
};

}  // namespace pef
