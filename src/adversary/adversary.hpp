// The adversary interface: chooses the present edge set E_t each round.
//
// The paper's adversary is omniscient and adaptive: it knows the algorithm,
// the robots' positions and their full states, and picks E_t with no
// stability/recurrence/periodicity obligation beyond connected-over-time.
// Oblivious schedules (functions of time only) are wrapped by
// ObliviousAdversary; the lower-bound constructions are genuinely adaptive.
#pragma once

#include <memory>
#include <string>

#include "common/types.hpp"
#include "dynamic_graph/edge_set.hpp"
#include "dynamic_graph/ring.hpp"
#include "dynamic_graph/schedule.hpp"
#include "robot/configuration.hpp"

namespace pef {

class Adversary {
 public:
  virtual ~Adversary() = default;

  [[nodiscard]] virtual const Ring& ring() const = 0;

  /// Choose E_t.  Called exactly once per round, in increasing `t` order,
  /// with the configuration *before* the round's Look phase (the paper's
  /// gamma_t).  Implementations may keep internal state.
  [[nodiscard]] virtual EdgeSet choose_edges(Time t,
                                             const Configuration& gamma) = 0;

  [[nodiscard]] virtual std::string name() const = 0;
};

using AdversaryPtr = std::unique_ptr<Adversary>;

/// Adapts an oblivious EdgeSchedule to the Adversary interface.
class ObliviousAdversary final : public Adversary {
 public:
  explicit ObliviousAdversary(SchedulePtr schedule)
      : schedule_(std::move(schedule)) {}

  [[nodiscard]] const Ring& ring() const override {
    return schedule_->ring();
  }
  [[nodiscard]] EdgeSet choose_edges(Time t, const Configuration&) override {
    return schedule_->edges_at(t);
  }
  [[nodiscard]] std::string name() const override {
    return schedule_->name();
  }

  [[nodiscard]] const SchedulePtr& schedule() const { return schedule_; }

 private:
  SchedulePtr schedule_;
};

[[nodiscard]] inline AdversaryPtr make_oblivious(SchedulePtr schedule) {
  return std::make_unique<ObliviousAdversary>(std::move(schedule));
}

}  // namespace pef
