#include "adversary/greedy_blocker.hpp"

#include "common/check.hpp"

namespace pef {

GreedyBlockerAdversary::GreedyBlockerAdversary(Ring ring, Time max_absence)
    : ring_(ring),
      max_absence_(max_absence),
      absence_run_(ring.edge_count(), 0) {
  PEF_CHECK(max_absence >= 1);
}

EdgeSet GreedyBlockerAdversary::choose_edges(Time, const Configuration& gamma) {
  EdgeSet edges = EdgeSet::all(ring_.edge_count());
  for (const RobotSnapshot& r : gamma.robots()) {
    const EdgeId pointed =
        ring_.adjacent_edge(r.node, r.considered_direction());
    if (absence_run_[pointed] < max_absence_) {
      edges.erase(pointed);
    }
  }
  for (EdgeId e = 0; e < ring_.edge_count(); ++e) {
    absence_run_[e] = edges.contains(e) ? 0 : absence_run_[e] + 1;
  }
  return edges;
}

std::string GreedyBlockerAdversary::name() const {
  return "greedy-blocker(A=" + std::to_string(max_absence_) + ")";
}

}  // namespace pef
