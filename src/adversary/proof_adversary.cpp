#include "adversary/proof_adversary.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace pef {

StagedProofAdversary::StagedProofAdversary(Ring ring, NodeId anchor,
                                           std::uint32_t width, Time patience)
    : ring_(ring), anchor_(anchor), width_(width), patience_(patience) {
  PEF_CHECK(ring_.is_valid_node(anchor));
  PEF_CHECK(width >= 2);
  PEF_CHECK(width < ring_.node_count());
  PEF_CHECK(patience >= 1);
}

std::uint32_t StagedProofAdversary::offset_of(NodeId u) const {
  return (u + ring_.node_count() - anchor_) % ring_.node_count();
}

NodeId StagedProofAdversary::window_node(std::uint32_t offset) const {
  return (anchor_ + offset) % ring_.node_count();
}

bool StagedProofAdversary::in_window(NodeId u) const {
  return offset_of(u) < width_;
}

bool StagedProofAdversary::is_boundary(NodeId u) const {
  const std::uint32_t o = offset_of(u);
  return o == 0 || o == width_ - 1;
}

EdgeId StagedProofAdversary::left_boundary_edge() const {
  return ring_.adjacent_edge(anchor_, GlobalDirection::kCounterClockwise);
}

EdgeId StagedProofAdversary::right_boundary_edge() const {
  return ring_.adjacent_edge(window_node(width_ - 1),
                             GlobalDirection::kClockwise);
}

void StagedProofAdversary::begin_stage(Time t, RobotId designated,
                                       const Configuration& gamma) {
  designated_ = designated;
  stage_start_ = t;
  stage_start_node_ = gamma.robot(designated).node;
  // Log the stage's removal set (complement of the assembled present set).
  const EdgeSet present = assemble_edges(gamma);
  stage_removed_.clear();
  for (EdgeId e = 0; e < ring_.edge_count(); ++e) {
    if (!present.contains(e)) stage_removed_.push_back(e);
  }
}

EdgeSet StagedProofAdversary::assemble_edges(
    const Configuration& gamma) const {
  EdgeSet edges = EdgeSet::all(ring_.edge_count());

  // Freeze every non-designated robot: both its adjacent edges removed
  // (this reproduces the paper's per-stage removal sets, e.g.
  // {e_ul, e_wl, e_wr} in Item 3 of Theorem 4.1).
  for (RobotId r = 0; r < gamma.robot_count(); ++r) {
    if (r == designated_) continue;
    const NodeId x = gamma.robot(r).node;
    edges.erase(ring_.adjacent_edge(x, GlobalDirection::kClockwise));
    edges.erase(ring_.adjacent_edge(x, GlobalDirection::kCounterClockwise));
  }

  // The designated robot keeps one inward edge (OneEdge): standing on a
  // window boundary node, its outward edge is removed; standing mid-window,
  // the edge towards the adjacent frozen robot is already gone and the
  // away edge stays present.
  const NodeId x = gamma.robot(designated_).node;
  const std::uint32_t o = offset_of(x);
  if (o == 0) edges.erase(left_boundary_edge());
  if (o == width_ - 1) edges.erase(right_boundary_edge());
  return edges;
}

EdgeSet StagedProofAdversary::choose_edges(Time t, const Configuration& gamma) {
  PEF_CHECK(gamma.robot_count() >= 1);

  // Terminal mode: exactly one eventually-missing edge, everything else
  // present forever (a legal connected-over-time suffix).  Robots may roam
  // the whole chain in this mode.
  if (terminal_) {
    EdgeSet edges = EdgeSet::all(ring_.edge_count());
    edges.erase(*terminal_);
    return edges;
  }

  for (const RobotSnapshot& r : gamma.robots()) {
    PEF_CHECK_MSG(in_window(r.node),
                  "robot escaped the proof window (impossible)");
  }

  // Tower fallback: with colocated robots the freeze/designate geometry is
  // ill-defined; fall back to the plain cage for this round (remove a
  // boundary edge iff its inner endpoint is occupied) and restart the stage
  // clock once the tower breaks.
  if (gamma.has_tower()) {
    initialised_ = false;
    EdgeSet edges = EdgeSet::all(ring_.edge_count());
    for (const RobotSnapshot& r : gamma.robots()) {
      if (r.node == anchor_) edges.erase(left_boundary_edge());
      if (r.node == window_node(width_ - 1)) {
        edges.erase(right_boundary_edge());
      }
    }
    return edges;
  }

  if (!initialised_) {
    // Initial designation: prefer a robot standing mid-window (the proof's
    // first stage designates r2 standing on v); fall back to robot 0.
    RobotId designated = 0;
    for (RobotId r = 0; r < gamma.robot_count(); ++r) {
      if (!is_boundary(gamma.robot(r).node)) {
        designated = r;
        break;
      }
    }
    begin_stage(t, designated, gamma);
    initialised_ = true;
    return assemble_edges(gamma);
  }

  const NodeId pos = gamma.robot(designated_).node;
  if (pos != stage_start_node_) {
    // Stage completed: the designated robot crossed its single present edge.
    stages_.push_back(StageRecord{stage_start_, t, designated_,
                                  stage_start_node_, pos, stage_removed_});
    RobotId next = designated_;
    if (is_boundary(pos) && gamma.robot_count() >= 2) {
      // Designation switches at window boundaries (the paper's rotation).
      next = (designated_ + 1) % gamma.robot_count();
    }
    begin_stage(t, next, gamma);
    return assemble_edges(gamma);
  }

  if (t - stage_start_ >= patience_) {
    // Camping: the algorithm violates the Lemma 4.1 / 5.1 departure
    // property.  Keep only the edge the camper points at missing, forever.
    // (A robot pointing at a present edge would have moved, so the pointed
    // edge is one of the removed ones.)
    const RobotSnapshot& camper = gamma.robot(designated_);
    const EdgeId pointed =
        ring_.adjacent_edge(camper.node, camper.considered_direction());
    terminal_ = pointed;
    EdgeSet edges = EdgeSet::all(ring_.edge_count());
    edges.erase(*terminal_);
    return edges;
  }

  return assemble_edges(gamma);
}

std::string StagedProofAdversary::name() const {
  return width_ == 2 ? "proof-thm51" : "proof-thm41(w=" +
         std::to_string(width_) + ")";
}

}  // namespace pef
