// The adaptive "cage": the simplest confinement adversary.
//
// A fixed window of `w` consecutive nodes is chosen; every round the cage
// removes a window-boundary edge exactly when a robot stands on its inner
// endpoint, and presents every other edge.  No robot can ever cross a
// boundary (the crossing edge is absent whenever a robot could use it), so
// the visited set can never exceed the window: at most w < n nodes.
//
// Legality: each boundary edge is absent only while its inner endpoint is
// occupied.  Against algorithms that keep moving, all absence intervals are
// finite and the realized graph is connected-over-time — a legal witness
// that the algorithm does not explore.  Against algorithms that camp on a
// boundary node forever, a boundary edge may be absent for the whole suffix;
// the audit then reports up to two suspected-missing edges and the *staged*
// proof adversary (proof_adversary.hpp), which mirrors the paper's
// construction, must be used for a legal witness instead.
#pragma once

#include "adversary/adversary.hpp"

namespace pef {

class ConfinementAdversary final : public Adversary {
 public:
  /// Window = nodes {anchor, anchor+1, ..., anchor+width-1} (clockwise).
  /// Requires 2 <= width < n.
  ConfinementAdversary(Ring ring, NodeId anchor, std::uint32_t width);

  [[nodiscard]] const Ring& ring() const override { return ring_; }
  [[nodiscard]] EdgeSet choose_edges(Time t,
                                     const Configuration& gamma) override;
  [[nodiscard]] std::string name() const override;

  [[nodiscard]] NodeId window_node(std::uint32_t offset) const {
    return (anchor_ + offset) % ring_.node_count();
  }
  [[nodiscard]] bool in_window(NodeId u) const;

  /// The two boundary edges: crossing them exits the window.
  [[nodiscard]] EdgeId left_boundary_edge() const;   // ccw edge of anchor
  [[nodiscard]] EdgeId right_boundary_edge() const;  // cw edge of last node

 private:
  Ring ring_;
  NodeId anchor_;
  std::uint32_t width_;
};

}  // namespace pef
