#include "adversary/confinement.hpp"

#include "common/check.hpp"

namespace pef {

ConfinementAdversary::ConfinementAdversary(Ring ring, NodeId anchor,
                                           std::uint32_t width)
    : ring_(ring), anchor_(anchor), width_(width) {
  PEF_CHECK(ring_.is_valid_node(anchor));
  PEF_CHECK(width >= 2);
  PEF_CHECK(width < ring_.node_count());
}

bool ConfinementAdversary::in_window(NodeId u) const {
  const std::uint32_t offset =
      (u + ring_.node_count() - anchor_) % ring_.node_count();
  return offset < width_;
}

EdgeId ConfinementAdversary::left_boundary_edge() const {
  return ring_.adjacent_edge(anchor_, GlobalDirection::kCounterClockwise);
}

EdgeId ConfinementAdversary::right_boundary_edge() const {
  return ring_.adjacent_edge(window_node(width_ - 1),
                             GlobalDirection::kClockwise);
}

EdgeSet ConfinementAdversary::choose_edges(Time, const Configuration& gamma) {
  EdgeSet edges = EdgeSet::all(ring_.edge_count());
  const NodeId left_node = anchor_;
  const NodeId right_node = window_node(width_ - 1);
  for (const RobotSnapshot& r : gamma.robots()) {
    PEF_CHECK_MSG(in_window(r.node),
                  "robot escaped the confinement window (impossible)");
    if (r.node == left_node) edges.erase(left_boundary_edge());
    if (r.node == right_node) edges.erase(right_boundary_edge());
  }
  return edges;
}

std::string ConfinementAdversary::name() const {
  return "cage(w=" + std::to_string(width_) + ")";
}

}  // namespace pef
