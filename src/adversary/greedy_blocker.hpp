// GreedyBlockerAdversary — a legality-capped stress adversary for the
// possibility side.
//
// Every round it removes exactly the edges the robots currently point at
// (the worst single-round choice an adversary can make), but a per-edge
// absence budget keeps it honest: an edge may be absent for at most
// `max_absence` consecutive rounds, so every edge is recurrent and the
// realized graph is connected-over-time by construction.
//
// Theorem 3.1 promises PEF_3+ explores under *any* connected-over-time
// behaviour, so this adversary can only slow it down (the stress bench
// measures by how much); baselines without the tower protocol degrade much
// further or starve.
#pragma once

#include <vector>

#include "adversary/adversary.hpp"

namespace pef {

class GreedyBlockerAdversary final : public Adversary {
 public:
  GreedyBlockerAdversary(Ring ring, Time max_absence);

  [[nodiscard]] const Ring& ring() const override { return ring_; }
  [[nodiscard]] EdgeSet choose_edges(Time t,
                                     const Configuration& gamma) override;
  [[nodiscard]] std::string name() const override;

  [[nodiscard]] Time max_absence() const { return max_absence_; }

 private:
  Ring ring_;
  Time max_absence_;
  std::vector<Time> absence_run_;  // consecutive rounds absent, per edge
};

}  // namespace pef
