#include "adversary/adaptive_missing_edge.hpp"

#include <algorithm>

namespace pef {

EdgeSet AdaptiveMissingEdgeAdversary::choose_edges(Time t,
                                                   const Configuration& gamma) {
  EdgeSet edges = EdgeSet::all(ring_.edge_count());
  if (t < trigger_time_) return edges;

  if (!chosen_) {
    // Pick the edge maximising the distance from its nearer extremity to the
    // closest robot: robots then need the longest trek to reach a sentinel
    // post, maximising the exploration disruption.
    EdgeId best = 0;
    std::uint32_t best_score = 0;
    for (EdgeId e = 0; e < ring_.edge_count(); ++e) {
      std::uint32_t nearest = ring_.node_count();
      for (const RobotSnapshot& r : gamma.robots()) {
        nearest = std::min({nearest, ring_.distance(r.node, ring_.edge_tail(e)),
                            ring_.distance(r.node, ring_.edge_head(e))});
      }
      if (nearest > best_score) {
        best_score = nearest;
        best = e;
      }
    }
    chosen_ = best;
  }
  edges.erase(*chosen_);
  return edges;
}

}  // namespace pef
