// The robot's Look-phase snapshot (Section 2.3 of the paper).
//
// During Look a robot learns exactly three local predicates:
//   ExistsEdge(dir)                     - edge adjacent in its pointed
//                                         direction is present
//   ExistsEdge(opposite dir)            - edge on the other side is present
//   ExistsOtherRobotsOnCurrentNode()    - local weak multiplicity detection
//
// Everything is expressed in the robot's own local frame; robots can see
// neither node identities, nor other robots' states, nor global directions.
#pragma once

#include "common/types.hpp"

namespace pef {

struct View {
  /// Presence of the adjacent edge in the direction currently pointed to
  /// (the robot's `dir` at Look time).
  bool exists_edge_ahead = false;

  /// Presence of the adjacent edge in the opposite direction.
  bool exists_edge_behind = false;

  /// True iff strictly more than one robot stands on the current node.
  bool other_robots_on_node = false;

  /// ExistsEdge(d) relative to the Look-time pointed direction: `ahead` is
  /// the pointed direction itself.
  [[nodiscard]] constexpr bool exists_edge(bool ahead) const {
    return ahead ? exists_edge_ahead : exists_edge_behind;
  }

  friend constexpr bool operator==(const View&, const View&) = default;
};

}  // namespace pef
