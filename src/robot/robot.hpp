// One robot as tracked by the simulator: placement + model variables +
// opaque algorithm memory.
#pragma once

#include <memory>
#include <string>

#include "common/types.hpp"
#include "robot/algorithm.hpp"
#include "robot/chirality.hpp"

namespace pef {

/// Initial placement of one robot (node, chirality).  Initial `dir` is
/// `left` per the paper ("Initially, this variable is set to left").
struct RobotPlacement {
  NodeId node = 0;
  Chirality chirality{true};
};

class Robot {
 public:
  Robot(RobotId id, RobotPlacement placement,
        std::unique_ptr<AlgorithmState> state)
      : id_(id),
        node_(placement.node),
        chirality_(placement.chirality),
        state_(std::move(state)) {}

  Robot(Robot&&) noexcept = default;
  Robot& operator=(Robot&&) noexcept = default;
  Robot(const Robot&) = delete;
  Robot& operator=(const Robot&) = delete;

  [[nodiscard]] RobotId id() const { return id_; }
  [[nodiscard]] NodeId node() const { return node_; }
  [[nodiscard]] Chirality chirality() const { return chirality_; }
  [[nodiscard]] LocalDirection dir() const { return dir_; }

  /// The global direction this robot currently "considers" (paper
  /// terminology): its local dir translated through its chirality.
  [[nodiscard]] GlobalDirection considered_direction() const {
    return chirality_.to_global(dir_);
  }

  [[nodiscard]] AlgorithmState& state() { return *state_; }
  [[nodiscard]] const AlgorithmState& state() const { return *state_; }

  void set_node(NodeId node) { node_ = node; }
  void set_dir(LocalDirection dir) { dir_ = dir; }

 private:
  RobotId id_;
  NodeId node_;
  Chirality chirality_;
  LocalDirection dir_ = LocalDirection::kLeft;
  std::unique_ptr<AlgorithmState> state_;
};

}  // namespace pef
