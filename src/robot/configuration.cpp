#include "robot/configuration.hpp"

namespace pef {

std::string Configuration::to_string() const {
  std::string out = "[";
  for (RobotId r = 0; r < robot_count(); ++r) {
    if (r != 0) out += ", ";
    const RobotSnapshot& s = robots_[r];
    out += "r" + std::to_string(r) + "@" + std::to_string(s.node) + "(" +
           pef::to_string(s.considered_direction()) + ")";
  }
  out += "]";
  return out;
}

}  // namespace pef
