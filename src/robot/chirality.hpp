// Per-robot chirality: the private, stable mapping between a robot's local
// port labels (left / right) and the external observer's global directions
// (clockwise / counter-clockwise).
//
// The paper: "each robot has its own stable chirality (i.e., each robot is
// able to locally label the two ports of its current node with left and
// right consistently over the ring and time but two different robots may not
// agree on this labeling)".
#pragma once

#include <string>

#include "common/types.hpp"

namespace pef {

class Chirality {
 public:
  /// `right_is_clockwise == true` means the robot's local `right` port is
  /// the global clockwise port at every node.
  explicit constexpr Chirality(bool right_is_clockwise = true)
      : right_is_clockwise_(right_is_clockwise) {}

  [[nodiscard]] constexpr GlobalDirection to_global(LocalDirection d) const {
    const bool right = d == LocalDirection::kRight;
    return right == right_is_clockwise_ ? GlobalDirection::kClockwise
                                        : GlobalDirection::kCounterClockwise;
  }

  [[nodiscard]] constexpr LocalDirection to_local(GlobalDirection d) const {
    const bool cw = d == GlobalDirection::kClockwise;
    return cw == right_is_clockwise_ ? LocalDirection::kRight
                                     : LocalDirection::kLeft;
  }

  [[nodiscard]] constexpr bool right_is_clockwise() const {
    return right_is_clockwise_;
  }

  /// The mirror chirality (used by the Lemma 4.1 construction, which places
  /// two robots with opposite chirality).
  [[nodiscard]] constexpr Chirality flipped() const {
    return Chirality(!right_is_clockwise_);
  }

  [[nodiscard]] std::string to_string() const {
    return right_is_clockwise_ ? "right=cw" : "right=ccw";
  }

  friend constexpr bool operator==(const Chirality&,
                                   const Chirality&) = default;

 private:
  bool right_is_clockwise_;
};

}  // namespace pef
