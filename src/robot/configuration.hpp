// Configuration: positions + externally-visible robot variables at one
// instant (the gamma of the paper's executions).
//
// This is the read-only snapshot handed to adversaries (the paper's
// adversary is omniscient: it sees positions, directions and states) and
// recorded into traces.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "dynamic_graph/ring.hpp"
#include "robot/chirality.hpp"

namespace pef {

/// Snapshot of one robot inside a Configuration.
struct RobotSnapshot {
  NodeId node = 0;
  LocalDirection dir = LocalDirection::kLeft;
  Chirality chirality{true};
  /// Stringified algorithm memory (for traces / debugging only).
  std::string state_repr;

  [[nodiscard]] GlobalDirection considered_direction() const {
    return chirality.to_global(dir);
  }
};

class Configuration {
 public:
  Configuration(Ring ring, std::vector<RobotSnapshot> robots)
      : ring_(ring), robots_(std::move(robots)) {}

  [[nodiscard]] const Ring& ring() const { return ring_; }
  [[nodiscard]] std::uint32_t robot_count() const {
    return static_cast<std::uint32_t>(robots_.size());
  }
  [[nodiscard]] const RobotSnapshot& robot(RobotId r) const {
    return robots_[r];
  }
  [[nodiscard]] const std::vector<RobotSnapshot>& robots() const {
    return robots_;
  }

  /// Number of robots on node `u`.
  [[nodiscard]] std::uint32_t robots_on(NodeId u) const {
    std::uint32_t count = 0;
    for (const RobotSnapshot& r : robots_) {
      if (r.node == u) ++count;
    }
    return count;
  }

  /// True iff some node holds more than one robot.
  [[nodiscard]] bool has_tower() const {
    for (RobotId a = 0; a < robot_count(); ++a) {
      for (RobotId b = a + 1; b < robot_count(); ++b) {
        if (robots_[a].node == robots_[b].node) return true;
      }
    }
    return false;
  }

  /// Distinct occupied nodes.
  [[nodiscard]] std::vector<NodeId> occupied_nodes() const {
    std::vector<NodeId> nodes;
    for (const RobotSnapshot& r : robots_) {
      bool seen = false;
      for (NodeId u : nodes) {
        if (u == r.node) {
          seen = true;
          break;
        }
      }
      if (!seen) nodes.push_back(r.node);
    }
    return nodes;
  }

  [[nodiscard]] std::string to_string() const;

 private:
  Ring ring_;
  std::vector<RobotSnapshot> robots_;
};

}  // namespace pef
