// Configuration: positions + externally-visible robot variables at one
// instant (the gamma of the paper's executions).
//
// This is the read-only snapshot handed to adversaries (the paper's
// adversary is omniscient: it sees positions, directions and states) and
// recorded into traces.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "dynamic_graph/ring.hpp"
#include "robot/chirality.hpp"

namespace pef {

/// Snapshot of one robot inside a Configuration.
struct RobotSnapshot {
  NodeId node = 0;
  LocalDirection dir = LocalDirection::kLeft;
  Chirality chirality{true};
  /// Stringified algorithm memory (for traces / debugging only).
  std::string state_repr;

  [[nodiscard]] GlobalDirection considered_direction() const {
    return chirality.to_global(dir);
  }
};

class Configuration {
 public:
  Configuration(Ring ring, std::vector<RobotSnapshot> robots)
      : ring_(ring),
        robots_(std::move(robots)),
        occupancy_(ring_.node_count(), 0) {
    for (const RobotSnapshot& r : robots_) {
      if (++occupancy_[r.node] == 2) ++tower_nodes_;
    }
  }

  [[nodiscard]] const Ring& ring() const { return ring_; }
  [[nodiscard]] std::uint32_t robot_count() const {
    return static_cast<std::uint32_t>(robots_.size());
  }
  [[nodiscard]] const RobotSnapshot& robot(RobotId r) const {
    return robots_[r];
  }
  [[nodiscard]] const std::vector<RobotSnapshot>& robots() const {
    return robots_;
  }

  /// Number of robots on node `u`.  O(1): the per-node occupancy histogram
  /// is maintained alongside the snapshots.
  [[nodiscard]] std::uint32_t robots_on(NodeId u) const {
    return occupancy_[u];
  }

  /// True iff some node holds more than one robot.  O(1).
  [[nodiscard]] bool has_tower() const { return tower_nodes_ > 0; }

  /// Distinct occupied nodes, ascending.
  [[nodiscard]] std::vector<NodeId> occupied_nodes() const {
    std::vector<NodeId> nodes;
    for (NodeId u = 0; u < ring_.node_count(); ++u) {
      if (occupancy_[u] > 0) nodes.push_back(u);
    }
    return nodes;
  }

  /// In-place mutators used by engines that keep one Configuration mirror
  /// alive across rounds instead of materializing a fresh snapshot per
  /// round.  They keep the occupancy histogram consistent.
  void relocate_robot(RobotId r, NodeId to) {
    const NodeId from = robots_[r].node;
    if (from == to) return;
    if (--occupancy_[from] == 1) --tower_nodes_;
    if (++occupancy_[to] == 2) ++tower_nodes_;
    robots_[r].node = to;
  }
  void set_robot_dir(RobotId r, LocalDirection dir) { robots_[r].dir = dir; }

  [[nodiscard]] std::string to_string() const;

 private:
  Ring ring_;
  std::vector<RobotSnapshot> robots_;
  std::vector<std::uint32_t> occupancy_;  // robots per node
  std::uint32_t tower_nodes_ = 0;         // nodes with occupancy >= 2
};

}  // namespace pef
