// The deterministic robot algorithm interface (the Compute phase).
//
// Robots are uniform: one Algorithm instance is shared by every robot, and
// each robot owns an AlgorithmState (its persistent memory).  The Compute
// phase may flip the robot's `dir` variable based only on the Look-phase
// View and the robot's own state — matching the paper's model exactly: no
// IDs, no communication, no global knowledge.
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "common/types.hpp"
#include "robot/kernel.hpp"
#include "robot/view.hpp"

namespace pef {

/// Persistent per-robot memory.  Concrete algorithms subclass this; the
/// simulator treats it as an opaque blob (it can clone it for trace
/// snapshots and stringify it for debugging).
class AlgorithmState {
 public:
  virtual ~AlgorithmState() = default;

  [[nodiscard]] virtual std::unique_ptr<AlgorithmState> clone() const = 0;

  /// Human-readable dump for traces and test failures.
  [[nodiscard]] virtual std::string to_string() const = 0;
};

/// Trivial state for memoryless (oblivious) algorithms.
class EmptyState final : public AlgorithmState {
 public:
  [[nodiscard]] std::unique_ptr<AlgorithmState> clone() const override {
    return std::make_unique<EmptyState>();
  }
  [[nodiscard]] std::string to_string() const override { return "{}"; }
};

class Algorithm {
 public:
  virtual ~Algorithm() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Fresh persistent memory for one robot.  `robot_index` exists only so
  /// that *non-paper* randomized baselines can derive independent streams;
  /// paper algorithms ignore it (robots are anonymous and uniform).
  [[nodiscard]] virtual std::unique_ptr<AlgorithmState> make_state(
      RobotId robot_index) const = 0;

  /// The Compute phase: may flip `dir` (the robot's direction variable, in
  /// the robot's local frame) and update `state`.  `view` is the Look-phase
  /// snapshot taken with the *incoming* value of `dir`.
  virtual void compute(const View& view, LocalDirection& dir,
                       AlgorithmState& state) const = 0;

  /// The algorithm's devirtualized twin, when one exists: a KernelSpec the
  /// engine can run through the enum-dispatched POD compute path
  /// (algorithms/kernels.hpp) instead of this virtual interface.  Must be
  /// behaviourally identical to compute() — differential tests enforce it.
  /// Every registry algorithm provides one; bespoke algorithms may not.
  [[nodiscard]] virtual std::optional<KernelSpec> kernel() const {
    return std::nullopt;
  }
};

using AlgorithmPtr = std::shared_ptr<const Algorithm>;

}  // namespace pef
