// The devirtualized algorithm-kernel API.
//
// Every registry algorithm exists in two forms: the canonical virtual
// `Algorithm` (heap AlgorithmState, virtual compute — the reference the
// proofs are read against) and an `AlgorithmKernel` twin: an enum-dispatched
// compute function over POD per-robot state that the engine compiles into
// its hot loop.  A kernel is identified by a KernelSpec — the KernelId plus
// the few scalar parameters (seed, period) a family needs — and its whole
// per-robot memory is one fixed-size KernelState, so an engine stores all
// robot memories in a single contiguous vector: no unique_ptr chase, no
// virtual call, per round.
//
// Differential tests (tests/unified_engine_test.cpp) pin every kernel to
// its virtual twin bit-for-bit; the kernel implementations themselves live
// in algorithms/kernels.hpp.
#pragma once

#include <cstdint>

#include "common/rng.hpp"
#include "common/types.hpp"

namespace pef {

/// One value per registry algorithm (virtual twins listed in
/// algorithms/registry.cpp).
enum class KernelId : std::uint8_t {
  kKeepDirection = 0,
  kBounce,
  kPef1,
  kPef2,
  kPef3Plus,
  kPef3PlusNoRule2,
  kPef3PlusNoRule3,
  kOscillating,
  kRandomWalk,
};

[[nodiscard]] constexpr const char* to_string(KernelId id) {
  switch (id) {
    case KernelId::kKeepDirection:
      return "keep-direction";
    case KernelId::kBounce:
      return "bounce";
    case KernelId::kPef1:
      return "pef1";
    case KernelId::kPef2:
      return "pef2";
    case KernelId::kPef3Plus:
      return "pef3+";
    case KernelId::kPef3PlusNoRule2:
      return "pef3+-no-rule2";
    case KernelId::kPef3PlusNoRule3:
      return "pef3+-no-rule3";
    case KernelId::kOscillating:
      return "oscillating";
    case KernelId::kRandomWalk:
      return "random-walk";
  }
  return "?";
}

/// A kernel plus the scalar parameters of its family.  Cheap to copy; the
/// engine keeps one per run and dispatches on `id` each Compute.
struct KernelSpec {
  KernelId id = KernelId::kKeepDirection;
  /// Master seed for randomized kernels (random-walk); robots derive their
  /// per-robot streams from it exactly like the virtual twin's make_state.
  std::uint64_t seed = 0;
  /// Turn period for oscillating.
  std::uint64_t period = 0;
};

/// The per-robot kernel memory: one fixed-size, trivially-copyable struct
/// covering every registry kernel (each uses the fields it needs).
///
/// The FIELD NAMES are the contract, not the struct: kernel_compute /
/// init_kernel_state are generic over any accessor exposing `rng`,
/// `counter` and `has_moved`.  Engine stores whole KernelStates in one
/// vector; BatchEngine stores each field as its own replica-strided plane
/// and passes a reference proxy, so a batched round touches only the bytes
/// the kernel actually uses (and the hot pef3+ flag stays contiguous for
/// the vectorizer).  Add new per-robot memory as a new field here plus a
/// plane + proxy entry in BatchEngine.
struct KernelState {
  Xoshiro256 rng{0};             // random-walk
  std::uint64_t counter = 0;     // oscillating: rounds since last turn
  std::uint8_t has_moved = 0;    // pef3+ family: HasMovedPreviousStep
};

}  // namespace pef
