#include "analysis/coverage.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace pef {

CoverageReport analyze_coverage(const Trace& trace, Time suffix_window) {
  const std::uint32_t n = trace.ring().node_count();
  const Time horizon = trace.length();
  if (suffix_window == 0) suffix_window = horizon / 4 + 1;

  CoverageReport report;
  report.horizon = horizon;
  report.suffix_window = suffix_window;
  report.visit_counts.assign(n, 0);

  std::vector<Time> last_visit(n, 0);
  std::vector<bool> visited(n, false);
  std::uint32_t covered = 0;

  auto visit = [&](NodeId u, Time t) {
    ++report.visit_counts[u];
    if (visited[u]) {
      const Time gap = t - last_visit[u];
      report.max_closed_gap = std::max(report.max_closed_gap, gap);
    } else {
      visited[u] = true;
      ++covered;
      if (covered == n && !report.cover_time) report.cover_time = t;
    }
    last_visit[u] = t;
  };

  // Configuration time 0: initial positions count as visits.
  for (const RobotSnapshot& r : trace.initial_configuration().robots()) {
    visit(r.node, 0);
  }
  // Configuration time t+1 after each round t.
  for (const RoundRecord& round : trace.rounds()) {
    for (const RobotRoundRecord& r : round.robots) {
      visit(r.node_after, round.time + 1);
    }
  }

  report.visited_node_count = covered;

  const Time suffix_start =
      horizon >= suffix_window ? horizon - suffix_window : 0;
  for (NodeId u = 0; u < n; ++u) {
    // Open gap at the horizon; never-visited nodes starve the whole window.
    const Time open_gap = visited[u] ? horizon - last_visit[u] : horizon;
    report.max_revisit_gap =
        std::max({report.max_revisit_gap, report.max_closed_gap, open_gap});
    if (visited[u] && last_visit[u] >= suffix_start) {
      ++report.nodes_visited_in_suffix;
    }
  }
  return report;
}

std::vector<Time> visit_times(const Trace& trace, NodeId node) {
  PEF_CHECK(trace.ring().is_valid_node(node));
  std::vector<Time> times;
  for (const RobotSnapshot& r : trace.initial_configuration().robots()) {
    if (r.node == node) {
      times.push_back(0);
      break;
    }
  }
  for (const RoundRecord& round : trace.rounds()) {
    for (const RobotRoundRecord& r : round.robots) {
      if (r.node_after == node) {
        times.push_back(round.time + 1);
        break;
      }
    }
  }
  return times;
}

}  // namespace pef
