// Trace serialization: dump executions and edge histories as CSV, and load
// an edge history back as a RecordedSchedule.
//
// Round-trips let external tooling (plots, notebooks) consume runs, and let
// interesting adaptive-adversary prefixes be replayed as oblivious
// schedules (an adaptive adversary's realized choices, replayed verbatim,
// defeat the same deterministic algorithm again — determinism makes the
// replay exact).
#pragma once

#include <iosfwd>
#include <memory>

#include "dynamic_graph/schedules.hpp"
#include "scheduler/trace.hpp"

namespace pef {

/// One row per (round, robot): time, robot, node_before, node_after,
/// dir_before, dir_after, moved, saw_other_robots.
void write_trace_csv(std::ostream& os, const Trace& trace);

/// One row per round: time, then one 0/1 column per edge.
void write_edge_history_csv(std::ostream& os, const Trace& trace);

/// Parses the format produced by write_edge_history_csv back into a
/// schedule (tail rule: repeat the last row).  Returns nullptr on parse
/// errors.
[[nodiscard]] std::shared_ptr<RecordedSchedule> read_edge_history_csv(
    std::istream& is, const Ring& ring);

}  // namespace pef
