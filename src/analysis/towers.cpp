#include "analysis/towers.hpp"

#include <algorithm>
#include <map>

namespace pef {

namespace {

/// Robots grouped by node at configuration time `t`.
std::map<NodeId, std::vector<RobotId>> groups_at(const Trace& trace, Time t) {
  std::map<NodeId, std::vector<RobotId>> groups;
  const std::uint32_t k = trace.initial_configuration().robot_count();
  for (RobotId r = 0; r < k; ++r) {
    groups[trace.position_at(r, t)].push_back(r);
  }
  for (auto it = groups.begin(); it != groups.end();) {
    it = it->second.size() < 2 ? groups.erase(it) : std::next(it);
  }
  return groups;
}

/// Considered (global) direction of robot `r` after the Compute phase of
/// round `t` — i.e. its dir in configuration t+1 and during the Move of t.
GlobalDirection considered_after_compute(const Trace& trace, RobotId r,
                                         Time t) {
  const RobotRoundRecord& rec =
      trace.rounds()[static_cast<std::size_t>(t)].robots[r];
  const Chirality chirality =
      trace.initial_configuration().robot(r).chirality;
  return chirality.to_global(rec.dir_after);
}

}  // namespace

TowerReport analyze_towers(const Trace& trace) {
  TowerReport report;
  const Time horizon = trace.length();

  // Open towers keyed by their robot set (a tower follows its robots: the
  // set may move together across nodes, e.g. two same-direction robots
  // travelling as a pair).  The recorded node is the formation node.
  struct Open {
    std::vector<RobotId> robots;
    Time start;
    NodeId formed_at;
  };
  std::map<std::vector<RobotId>, Open> open;

  auto close = [&](const Open& tower, Time end) {
    TowerEvent event;
    event.node = tower.formed_at;
    event.start = tower.start;
    event.end = end;
    event.robots = tower.robots;
    report.max_tower_size =
        std::max(report.max_tower_size,
                 static_cast<std::uint32_t>(event.robots.size()));
    report.max_tower_duration =
        std::max(report.max_tower_duration, event.duration());
    if (event.robots.size() >= 3) report.lemma_3_4_holds = false;

    if (event.robots.size() == 2 && horizon > 0 && event.start < horizon) {
      // Lemma 3.3: opposite global directions after every Compute executed
      // while the tower exists (rounds start .. min(end, horizon-1)).
      const Time last_round = std::min(event.end, horizon - 1);
      for (Time t = event.start; t <= last_round; ++t) {
        const GlobalDirection a =
            considered_after_compute(trace, event.robots[0], t);
        const GlobalDirection b =
            considered_after_compute(trace, event.robots[1], t);
        if (a == b) {
          report.lemma_3_3_holds = false;
          break;
        }
      }
    }
    report.towers.push_back(std::move(event));
  };

  for (Time t = 0; t <= horizon; ++t) {
    const auto groups = groups_at(trace, t);
    // Robot sets sharing a node right now.
    std::map<std::vector<RobotId>, NodeId> sets_now;
    for (const auto& [node, robots] : groups) sets_now.emplace(robots, node);

    // Close towers whose exact robot set no longer shares a node.
    for (auto it = open.begin(); it != open.end();) {
      if (!sets_now.contains(it->first)) {
        close(it->second, t - 1);
        it = open.erase(it);
      } else {
        ++it;
      }
    }
    // Open towers for new robot sets (including membership changes, which
    // close the old set above and start a fresh maximal interval here).
    for (const auto& [robots, node] : sets_now) {
      if (!open.contains(robots)) {
        open.emplace(robots, Open{robots, t, node});
        ++report.tower_formation_count;
      }
    }
  }
  // Close whatever is still open at the horizon.
  for (const auto& [robots, tower] : open) close(tower, horizon);

  return report;
}

}  // namespace pef
