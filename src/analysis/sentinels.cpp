#include "analysis/sentinels.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace pef {

namespace {

/// Is some robot standing on `node` and pointing at `edge` at configuration
/// time `t`?  (dir in configuration t is dir_before of round t, equal to
/// dir_after of round t-1.)
bool guarded(const Trace& trace, NodeId node, EdgeId edge, Time t) {
  const Ring& ring = trace.ring();
  const std::uint32_t k = trace.initial_configuration().robot_count();
  for (RobotId r = 0; r < k; ++r) {
    if (trace.position_at(r, t) != node) continue;
    LocalDirection dir;
    if (t == 0) {
      dir = trace.initial_configuration().robot(r).dir;
    } else {
      dir = trace.rounds()[static_cast<std::size_t>(t - 1)].robots[r].dir_after;
    }
    const Chirality chirality =
        trace.initial_configuration().robot(r).chirality;
    if (ring.adjacent_edge(node, chirality.to_global(dir)) == edge) {
      return true;
    }
  }
  return false;
}

}  // namespace

SentinelReport analyze_sentinels(const Trace& trace, EdgeId missing_edge) {
  const Ring& ring = trace.ring();
  PEF_CHECK(ring.is_valid_edge(missing_edge));
  const Time horizon = trace.length();
  const NodeId tail = ring.edge_tail(missing_edge);
  const NodeId head = ring.edge_head(missing_edge);

  SentinelReport report;

  // Scan backwards for the longest suffix in which both extremities are
  // continuously guarded.
  std::optional<Time> suffix_start;
  for (Time t = horizon + 1; t-- > 0;) {
    if (guarded(trace, tail, missing_edge, t) &&
        guarded(trace, head, missing_edge, t)) {
      suffix_start = t;
    } else {
      break;
    }
  }
  // Only report formation if the suffix is non-trivial (covers the final
  // configuration and at least one round).
  if (suffix_start && *suffix_start < horizon) {
    report.formation_time = suffix_start;
  }

  // Explorers: robots that moved in the final quarter.  Sentinels: robots
  // parked on an extremity, pointing at the missing edge, that did NOT move
  // in the final quarter (a just-arrived explorer momentarily points at the
  // missing edge too and must not be double-counted).
  const std::uint32_t k = trace.initial_configuration().robot_count();
  const Time quarter_start = horizon - std::min(horizon, horizon / 4);
  std::vector<bool> moved_recently(k, false);
  for (RobotId r = 0; r < k; ++r) {
    for (Time t = quarter_start; t < horizon; ++t) {
      if (trace.rounds()[static_cast<std::size_t>(t)].robots[r].moved) {
        moved_recently[r] = true;
        break;
      }
    }
    if (moved_recently[r]) report.explorers_at_horizon.push_back(r);
  }
  for (RobotId r = 0; r < k; ++r) {
    if (moved_recently[r]) continue;
    const NodeId pos = trace.position_at(r, horizon);
    if ((pos == tail && guarded(trace, tail, missing_edge, horizon)) ||
        (pos == head && guarded(trace, head, missing_edge, horizon))) {
      report.sentinels_at_horizon.push_back(r);
    }
  }
  return report;
}

}  // namespace pef
