// Per-robot mobility statistics: distance travelled, wait ratios, direction
// flips, and pairwise meetings.  Used by benches and examples to report the
// sentinel/explorer division of labour quantitatively (a frozen sentinel
// has ~0 late-run mobility; the explorers carry all of it).
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "scheduler/trace.hpp"

namespace pef {

struct RobotMobility {
  RobotId robot = 0;
  std::uint64_t moves = 0;
  std::uint64_t waits = 0;           // rounds without movement
  std::uint64_t direction_flips = 0; // Compute changed dir
  std::uint64_t blocked_rounds = 0;  // pointed edge absent at Move
  std::uint64_t meetings = 0;        // rounds spent sharing a node

  [[nodiscard]] double duty_cycle() const {
    const std::uint64_t total = moves + waits;
    return total == 0 ? 0.0
                      : static_cast<double>(moves) /
                            static_cast<double>(total);
  }
};

struct MobilityReport {
  std::vector<RobotMobility> robots;
  std::uint64_t total_moves = 0;

  /// Index of the robot with the most / least moves.
  [[nodiscard]] RobotId busiest() const;
  [[nodiscard]] RobotId idlest() const;
};

/// Analyse the whole trace, or only rounds in [from, trace length) when
/// `from` > 0 (e.g. the steady state after sentinel formation).
[[nodiscard]] MobilityReport analyze_mobility(const Trace& trace,
                                              Time from = 0);

}  // namespace pef
