#include "analysis/trace_io.hpp"

#include <istream>
#include <ostream>
#include <sstream>
#include <string>
#include <vector>

namespace pef {

void write_trace_csv(std::ostream& os, const Trace& trace) {
  os << "time,robot,node_before,node_after,dir_before,dir_after,moved,"
        "saw_other_robots\n";
  for (const RoundRecord& round : trace.rounds()) {
    for (RobotId r = 0; r < round.robots.size(); ++r) {
      const RobotRoundRecord& rec = round.robots[r];
      os << round.time << ',' << r << ',' << rec.node_before << ','
         << rec.node_after << ',' << to_string(rec.dir_before) << ','
         << to_string(rec.dir_after) << ',' << (rec.moved ? 1 : 0) << ','
         << (rec.saw_other_robots ? 1 : 0) << '\n';
    }
  }
}

void write_edge_history_csv(std::ostream& os, const Trace& trace) {
  os << "time";
  for (EdgeId e = 0; e < trace.ring().edge_count(); ++e) {
    os << ",e" << e;
  }
  os << '\n';
  for (const RoundRecord& round : trace.rounds()) {
    os << round.time;
    for (EdgeId e = 0; e < trace.ring().edge_count(); ++e) {
      os << ',' << (round.edges.contains(e) ? 1 : 0);
    }
    os << '\n';
  }
}

std::shared_ptr<RecordedSchedule> read_edge_history_csv(std::istream& is,
                                                        const Ring& ring) {
  std::string line;
  if (!std::getline(is, line)) return nullptr;  // header
  std::vector<EdgeSet> rounds;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    std::stringstream ss(line);
    std::string cell;
    if (!std::getline(ss, cell, ',')) return nullptr;  // time column
    EdgeSet set(ring.edge_count());
    for (EdgeId e = 0; e < ring.edge_count(); ++e) {
      if (!std::getline(ss, cell, ',')) return nullptr;
      if (cell == "1") {
        set.insert(e);
      } else if (cell != "0") {
        return nullptr;
      }
    }
    rounds.push_back(std::move(set));
  }
  if (rounds.empty()) return nullptr;
  return std::make_shared<RecordedSchedule>(ring, std::move(rounds),
                                            TailRule::kRepeatLast);
}

}  // namespace pef
