// Sentinel analysis (Lemma 3.7): with an eventual missing edge e, PEF_3+
// eventually posts one robot forever on each extremity of e, pointing at e.
//
// analyze_sentinels() finds the earliest time from which both extremities
// are continuously occupied by robots pointing at the missing edge until the
// horizon.  It also classifies the final role of every robot (sentinel vs
// explorer) so benches can report the paper's "2 sentinels + (k-2)
// explorers" structure.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/types.hpp"
#include "scheduler/trace.hpp"

namespace pef {

struct SentinelReport {
  /// Both extremities held continuously (by possibly-changing robots)
  /// pointing at the missing edge, from this time to the horizon.
  std::optional<Time> formation_time;

  /// Robots standing on an extremity of the missing edge and pointing at it
  /// at the horizon.
  std::vector<RobotId> sentinels_at_horizon;

  /// Robots that moved at least once in the final quarter of the trace
  /// (the paper's explorers keep shuttling along the chain).
  std::vector<RobotId> explorers_at_horizon;

  [[nodiscard]] bool sentinels_formed() const {
    return formation_time.has_value();
  }
};

/// `missing_edge` is the eventual missing edge of the run's schedule.
[[nodiscard]] SentinelReport analyze_sentinels(const Trace& trace,
                                               EdgeId missing_edge);

}  // namespace pef
