#include "analysis/render.hpp"

#include <algorithm>
#include <ostream>

#include "common/check.hpp"

namespace pef {

std::string render_configuration(const Trace& trace, Time t,
                                 const RenderOptions& options) {
  const Ring& ring = trace.ring();
  const std::uint32_t k = trace.initial_configuration().robot_count();

  // Edge presence for the round *starting* at t (the last line has no
  // following round; reuse the previous round's edges for display).
  const Time edge_round = t < trace.length() ? t : (t == 0 ? 0 : t - 1);
  const EdgeSet* edges = nullptr;
  if (trace.length() > 0) {
    edges = &trace.rounds()[static_cast<std::size_t>(edge_round)].edges;
  }

  std::string line = "t=" + std::to_string(t);
  line.resize(10, ' ');
  for (NodeId u = 0; u < ring.node_count(); ++u) {
    std::uint32_t count = 0;
    for (RobotId r = 0; r < k; ++r) {
      if (trace.position_at(r, t) == u) ++count;
    }
    line += count == 0
                ? '.'
                : static_cast<char>(count < 10 ? '0' + count : '+');
    if (u + 1 < ring.node_count() || ring.node_count() > 2) {
      const EdgeId e = ring.adjacent_edge(u, GlobalDirection::kClockwise);
      if (u + 1 < ring.node_count()) {  // wrap edge rendered at line end
        if (e == options.highlight_edge) {
          line += '|';
        } else if (options.show_edges && edges != nullptr) {
          line += edges->contains(e) ? '-' : ' ';
        }
      }
    }
  }
  // The wrap-around edge (n-1, 0), shown after the last node.
  const EdgeId wrap = ring.adjacent_edge(static_cast<NodeId>(
                                             ring.node_count() - 1),
                                         GlobalDirection::kClockwise);
  if (wrap == options.highlight_edge) {
    line += " |";
  } else if (options.show_edges && edges != nullptr) {
    line += edges->contains(wrap) ? " ~" : "  ";
  }
  return line;
}

void render_trace(std::ostream& os, const Trace& trace,
                  const RenderOptions& options) {
  const Time last = std::min<Time>(options.to, trace.length());
  if (options.from > last) return;
  const Time total = last - options.from + 1;

  if (total <= options.max_lines) {
    for (Time t = options.from; t <= last; ++t) {
      os << render_configuration(trace, t, options) << "\n";
    }
    return;
  }
  const Time head = options.max_lines / 2;
  const Time tail = options.max_lines - head;
  for (Time t = options.from; t < options.from + head; ++t) {
    os << render_configuration(trace, t, options) << "\n";
  }
  os << "   ... (" << (total - head - tail) << " rounds elided)\n";
  for (Time t = last + 1 - tail; t <= last; ++t) {
    os << render_configuration(trace, t, options) << "\n";
  }
}

}  // namespace pef
