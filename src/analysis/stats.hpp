// Tiny descriptive-statistics helpers for aggregating seed batteries.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

namespace pef {

struct Summary {
  double min = 0;
  double max = 0;
  double mean = 0;
  double median = 0;
  std::size_t count = 0;
};

[[nodiscard]] inline Summary summarize(std::vector<double> values) {
  Summary s;
  s.count = values.size();
  if (values.empty()) return s;
  std::sort(values.begin(), values.end());
  s.min = values.front();
  s.max = values.back();
  double total = 0;
  for (double v : values) total += v;
  s.mean = total / static_cast<double>(values.size());
  const std::size_t mid = values.size() / 2;
  s.median = values.size() % 2 == 1
                 ? values[mid]
                 : (values[mid - 1] + values[mid]) / 2.0;
  return s;
}

}  // namespace pef
