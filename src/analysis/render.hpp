// ASCII rendering of executions: one line per configuration, one column per
// node, with the missing edges of the round marked.  Used by examples and
// by test-failure diagnostics (a 40-line strip usually explains a starved
// node faster than any counter).
#pragma once

#include <iosfwd>
#include <string>

#include "common/types.hpp"
#include "scheduler/trace.hpp"

namespace pef {

struct RenderOptions {
  Time from = 0;
  Time to = kTimeInfinity;  // clamped to the trace length
  /// Print at most this many lines; the middle is elided with "...".
  std::size_t max_lines = 60;
  /// Mark this edge's position with '|' between its endpoints' columns.
  EdgeId highlight_edge = kInvalidEdge;
  bool show_edges = true;  // render '-'/' ' between nodes per round
};

/// One configuration as a strip: digits = robot multiplicity, '.' = empty.
[[nodiscard]] std::string render_configuration(const Trace& trace, Time t,
                                               const RenderOptions& options);

/// The whole window, one line per configuration.
void render_trace(std::ostream& os, const Trace& trace,
                  const RenderOptions& options = {});

}  // namespace pef
