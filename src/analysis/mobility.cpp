#include "analysis/mobility.hpp"

#include "common/check.hpp"

namespace pef {

RobotId MobilityReport::busiest() const {
  RobotId best = 0;
  for (RobotId r = 0; r < robots.size(); ++r) {
    if (robots[r].moves > robots[best].moves) best = r;
  }
  return best;
}

RobotId MobilityReport::idlest() const {
  RobotId best = 0;
  for (RobotId r = 0; r < robots.size(); ++r) {
    if (robots[r].moves < robots[best].moves) best = r;
  }
  return best;
}

MobilityReport analyze_mobility(const Trace& trace, Time from) {
  const std::uint32_t k = trace.initial_configuration().robot_count();
  MobilityReport report;
  report.robots.resize(k);
  for (RobotId r = 0; r < k; ++r) report.robots[r].robot = r;

  for (const RoundRecord& round : trace.rounds()) {
    if (round.time < from) continue;
    for (RobotId r = 0; r < k; ++r) {
      const RobotRoundRecord& rec = round.robots[r];
      RobotMobility& m = report.robots[r];
      if (rec.moved) {
        ++m.moves;
        ++report.total_moves;
      } else {
        ++m.waits;
        ++m.blocked_rounds;  // in FSYNC, not moving == pointed edge absent
      }
      if (rec.dir_before != rec.dir_after) ++m.direction_flips;
      if (rec.saw_other_robots) ++m.meetings;
    }
  }
  return report;
}

}  // namespace pef
