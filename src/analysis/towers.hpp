// Tower analysis: detection of the paper's towers (Section 2.2) and
// mechanical checks of the structural lemmas of Section 3.
//
// A tower T = (S, [ts, te]) is a maximal set S of >= 2 robots standing on
// one node over a maximal time interval.  For PEF_3+ the paper proves:
//   Lemma 3.3 — the two robots of a 2-tower consider opposite global
//               directions from the formation Compute onward;
//   Lemma 3.4 — no tower ever involves 3 or more robots.
// analyze_towers() extracts every maximal tower from a trace and evaluates
// both properties (they are reported, not assumed, so benches can show them
// *failing* for ablated algorithms).
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "scheduler/trace.hpp"

namespace pef {

struct TowerEvent {
  NodeId node = 0;
  /// Configuration-time interval [start, end] (inclusive) during which the
  /// same robot set shared the node; end == trace length means the tower
  /// was still alive at the horizon.
  Time start = 0;
  Time end = 0;
  std::vector<RobotId> robots;

  [[nodiscard]] std::size_t size() const { return robots.size(); }
  [[nodiscard]] Time duration() const { return end - start + 1; }
};

struct TowerReport {
  std::vector<TowerEvent> towers;
  std::uint32_t max_tower_size = 0;
  Time max_tower_duration = 0;
  std::uint64_t tower_formation_count = 0;

  /// Lemma 3.4: no tower of 3+ robots anywhere in the trace.
  bool lemma_3_4_holds = true;

  /// Lemma 3.3: in every 2-tower, from its formation round onward the two
  /// robots consider opposite *global* directions while involved.
  bool lemma_3_3_holds = true;
};

[[nodiscard]] TowerReport analyze_towers(const Trace& trace);

}  // namespace pef
