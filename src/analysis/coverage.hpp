// Coverage analysis: turns a Trace into the perpetual-exploration metrics
// the benches report.
//
// Perpetual exploration ("every node visited infinitely often by at least
// one robot") is judged over a finite horizon by two complementary signals:
//   * max_revisit_gap — the longest stretch any node went unvisited,
//     counting the open gap at the end of the window (a node starving at the
//     horizon shows a gap that grows with the horizon; under a correct
//     algorithm the gap stays bounded by a function of n only);
//   * the suffix check — every node is visited again within the last
//     `suffix_window` rounds (a starving node fails it for any horizon).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/types.hpp"
#include "scheduler/trace.hpp"

namespace pef {

struct CoverageReport {
  /// Number of times each node was occupied at a round boundary.
  std::vector<std::uint64_t> visit_counts;

  /// First time every node had been visited at least once; nullopt if some
  /// node was never reached within the horizon.
  std::optional<Time> cover_time;

  /// Number of distinct nodes visited at least once.
  std::uint32_t visited_node_count = 0;

  /// Longest unvisited stretch of any node, including the open stretch at
  /// the horizon (so a node never visited contributes the full horizon).
  Time max_revisit_gap = 0;

  /// Longest *closed* gap (between two actual visits) — bounded for correct
  /// algorithms even on nodes that are eventually starved by design.
  Time max_closed_gap = 0;

  /// Nodes visited at least once during the final `suffix_window` rounds.
  std::uint32_t nodes_visited_in_suffix = 0;

  Time suffix_window = 0;
  Time horizon = 0;

  /// The finite-horizon perpetual-exploration verdict: all nodes visited,
  /// and all nodes visited again within the suffix window.
  [[nodiscard]] bool perpetual(std::uint32_t node_count) const {
    return visited_node_count == node_count &&
           nodes_visited_in_suffix == node_count;
  }
};

/// Analyse coverage over the whole trace.  `suffix_window` defaults to a
/// quarter of the horizon when 0.
[[nodiscard]] CoverageReport analyze_coverage(const Trace& trace,
                                              Time suffix_window = 0);

/// Visit timestamps of one node (round boundaries at which it was occupied).
[[nodiscard]] std::vector<Time> visit_times(const Trace& trace, NodeId node);

}  // namespace pef
