#include "serve/cache.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <system_error>
#include <vector>

#include "orchestrator/ledger.hpp"

namespace pef::serve {

namespace fs = std::filesystem;

namespace {

std::string hash_hex(const std::string& key) {
  char buffer[17];
  std::snprintf(buffer, sizeof buffer, "%016llx",
                static_cast<unsigned long long>(fnv1a64(key)));
  return buffer;
}

}  // namespace

ResultCache::ResultCache(std::uint64_t byte_budget, std::string dir)
    : byte_budget_(byte_budget), dir_(std::move(dir)) {}

std::string ResultCache::entry_path(const std::string& key) const {
  if (dir_.empty()) return "";
  // The file stores the full key on its first line, so a 64-bit hash
  // collision is detectable: probe <hash>.entry, <hash>-1.entry, ... and
  // claim the first file that stores THIS key — or the first free slot.
  // Blindly sharing the base name would let two colliding specs overwrite
  // each other's persistence and lose an entry across a warm restart.
  const std::string base = dir_ + "/" + hash_hex(key);
  std::string path = base + ".entry";
  for (int sequence = 1;; ++sequence) {
    std::ifstream file(path, std::ios::binary);
    if (!file.is_open()) return path;  // free slot (and a no-op to remove)
    std::string stored_key;
    if (std::getline(file, stored_key) && stored_key == key) return path;
    path = base + "-" + std::to_string(sequence) + ".entry";
  }
}

std::optional<std::string> ResultCache::lookup(const std::string& key) {
  const auto it = index_.find(key);
  if (it == index_.end()) {
    ++stats_.misses;
    return std::nullopt;
  }
  ++stats_.hits;
  lru_.splice(lru_.begin(), lru_, it->second);
  return it->second->value;
}

void ResultCache::insert(const std::string& key, const std::string& result) {
  ++stats_.insertions;
  const auto it = index_.find(key);
  if (it != index_.end()) {
    // Deterministic engine: a re-run can only reproduce the same bytes, so
    // refreshing the value is a recency bump, not a content change.
    stats_.bytes -= it->second->key.size() + it->second->value.size();
    lru_.splice(lru_.begin(), lru_, it->second);
    it->second->value = result;
  } else {
    lru_.push_front({key, result});
    index_[key] = lru_.begin();
  }
  stats_.bytes += key.size() + result.size();
  stats_.entries = lru_.size();
  persist(lru_.front());
  evict_until_within_budget();
}

void ResultCache::evict_until_within_budget() {
  while (stats_.bytes > byte_budget_ && !lru_.empty()) {
    const Entry& victim = lru_.back();
    stats_.bytes -= victim.key.size() + victim.value.size();
    unpersist(victim.key);
    index_.erase(victim.key);
    lru_.pop_back();
    ++stats_.evictions;
  }
  stats_.entries = lru_.size();
}

void ResultCache::persist(const Entry& entry) {
  if (dir_.empty()) return;
  std::error_code ec;
  fs::create_directories(dir_, ec);  // best-effort; open() reports failure
  std::ofstream file(entry_path(entry.key),
                     std::ios::binary | std::ios::trunc);
  if (!file.is_open()) return;  // cache stays a cache: serving continues
  file << entry.key << "\n" << entry.value << "\n";
}

void ResultCache::unpersist(const std::string& key) {
  if (dir_.empty()) return;
  std::error_code ec;
  fs::remove(entry_path(key), ec);
}

std::uint64_t ResultCache::load_from_disk(std::string* warnings) {
  if (dir_.empty()) return 0;
  std::error_code ec;
  if (!fs::is_directory(dir_, ec)) return 0;

  const auto warn = [warnings](const std::string& message) {
    if (warnings == nullptr) return;
    if (!warnings->empty()) *warnings += "\n";
    *warnings += message;
  };

  // Deterministic reload order (directory iteration order is not),
  // so the post-reload LRU state is reproducible.
  std::vector<std::string> paths;
  for (const auto& entry : fs::directory_iterator(dir_, ec)) {
    if (entry.path().extension() == ".entry") {
      paths.push_back(entry.path().string());
    }
  }
  std::sort(paths.begin(), paths.end());

  std::uint64_t restored = 0;
  for (const std::string& path : paths) {
    std::ifstream file(path, std::ios::binary);
    std::string key;
    std::string value;
    if (!file.is_open() || !std::getline(file, key) ||
        !std::getline(file, value) || key.empty()) {
      warn("skipping malformed cache entry " + path);
      continue;
    }
    // insert() re-persists the same bytes and applies the budget, so a
    // directory larger than --cache-bytes shrinks to fit right here.
    const std::uint64_t insertions = stats_.insertions;
    insert(key, value);
    stats_.insertions = insertions;  // reloads are not new insertions
    ++restored;
  }
  stats_.reloaded = restored;
  return restored;
}

}  // namespace pef::serve
