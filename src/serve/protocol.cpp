#include "serve/protocol.hpp"

#include <cerrno>
#include <cstring>

#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#include "common/json.hpp"

namespace pef::serve {

namespace {

/// Read exactly `count` bytes; false on EOF/error.  `*clean_eof` is set
/// when zero bytes arrived before the stream ended (a frame boundary).
bool read_exact(int fd, unsigned char* buffer, std::size_t count,
                bool* clean_eof, std::string* error) {
  std::size_t got = 0;
  while (got < count) {
    const ssize_t n = ::read(fd, buffer + got, count - got);
    if (n == 0) {
      if (clean_eof != nullptr) *clean_eof = (got == 0);
      if (error != nullptr && got != 0) {
        *error = "stream ended mid-frame (" + std::to_string(got) + " of " +
                 std::to_string(count) + " bytes)";
      }
      return false;
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      if (clean_eof != nullptr) *clean_eof = false;
      if (error != nullptr) *error = std::strerror(errno);
      return false;
    }
    got += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

FrameStatus read_frame(int fd, std::string* payload, std::string* error) {
  unsigned char header[4];
  bool clean_eof = false;
  if (!read_exact(fd, header, sizeof header, &clean_eof, error)) {
    return clean_eof ? FrameStatus::kEof : FrameStatus::kError;
  }
  const std::uint32_t length = (static_cast<std::uint32_t>(header[0]) << 24) |
                               (static_cast<std::uint32_t>(header[1]) << 16) |
                               (static_cast<std::uint32_t>(header[2]) << 8) |
                               static_cast<std::uint32_t>(header[3]);
  if (length > kMaxFrameBytes) {
    if (error != nullptr) {
      *error = "frame of " + std::to_string(length) +
               " bytes exceeds the " + std::to_string(kMaxFrameBytes) +
               "-byte limit";
    }
    return FrameStatus::kOversized;
  }
  payload->resize(length);
  if (length == 0) return FrameStatus::kOk;
  if (!read_exact(fd, reinterpret_cast<unsigned char*>(payload->data()),
                  length, &clean_eof, error)) {
    if (clean_eof && error != nullptr) {
      *error = "stream ended before the declared payload";
    }
    return FrameStatus::kError;
  }
  return FrameStatus::kOk;
}

bool write_frame(int fd, const std::string& payload, std::string* error) {
  const std::uint32_t length = static_cast<std::uint32_t>(payload.size());
  if (payload.size() > kMaxFrameBytes) {
    if (error != nullptr) *error = "refusing to send an oversized frame";
    return false;
  }
  std::string wire;
  wire.reserve(payload.size() + 4);
  wire.push_back(static_cast<char>((length >> 24) & 0xff));
  wire.push_back(static_cast<char>((length >> 16) & 0xff));
  wire.push_back(static_cast<char>((length >> 8) & 0xff));
  wire.push_back(static_cast<char>(length & 0xff));
  wire += payload;

  std::size_t sent = 0;
  while (sent < wire.size()) {
    // MSG_NOSIGNAL: a peer that disconnected mid-stream must surface as a
    // return value (the job keeps running server-side), never as SIGPIPE.
    const ssize_t n = ::send(fd, wire.data() + sent, wire.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (error != nullptr) *error = std::strerror(errno);
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

std::string error_frame(const std::string& message) {
  JsonWriter json;
  json.begin_object();
  json.field("ok", false);
  json.field("error", message);
  json.end_object();
  return json.str();
}

}  // namespace pef::serve
