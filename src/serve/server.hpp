// pef_serve's daemon core: one warm engine serving many clients.
//
// Architecture (modeled on the TETRiS scheduler's server/client split —
// socket daemon, thin CLI client, env-var config):
//
//   accept loop   one thread polling the Unix socket, the optional TCP
//                 socket, and a self-pipe (the shutdown signal path —
//                 writing one byte to the pipe is async-signal-safe).
//   connections   one thread per client speaking the framed protocol
//                 (serve/protocol.hpp).  A connection that submitted work
//                 waits on the job's condition variable and streams
//                 progress frames from its OWN thread — workers never
//                 write to client sockets, so a dead client costs exactly
//                 one failed send on its own connection.
//   worker pool   a fixed pool pulling jobs off a bounded queue and
//                 running them on the existing SweepRunner / run_scenario
//                 backend; each completed result is inserted into the
//                 ResultCache before subscribers are woken.
//   coalescing    concurrent submissions of the same canonical spec JSON
//                 attach to the one in-flight job instead of queueing a
//                 duplicate — the second client streams the first's
//                 progress and both get the same bytes.
//
// Graceful shutdown (SIGTERM/SIGINT via the self-pipe, or the "shutdown"
// op): new submissions are refused ("draining"), running jobs complete,
// queued jobs are cancelled with a terminal event, connections drain, the
// socket file is unlinked.  The cache needs no flush — every insert is
// persisted when it happens.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "serve/cache.hpp"

namespace pef::serve {

struct ServerOptions {
  /// Unix-domain socket path (required; unlinked on shutdown).
  std::string socket_path;
  /// Optional additional TCP endpoint, "host:port" (e.g. "127.0.0.1:7411").
  std::string listen;
  /// Result-cache persistence directory ("" = in-memory only).
  std::string cache_dir;
  std::uint64_t cache_bytes = 256ull << 20;  // 256 MiB
  std::uint32_t workers = 2;
  /// Bounded job queue: submissions beyond this many queued jobs are
  /// refused with an error frame (back-pressure, not OOM).
  std::uint32_t max_queue = 64;
  /// Terminal jobs (done/failed/cancelled) stay queryable by id for this
  /// many completions, then fall out of the job table oldest-first — the
  /// result itself lives on in the cache keyed by spec, so a long-running
  /// daemon's memory is bounded by the cache budget, not its job history.
  std::uint32_t max_retained_jobs = 128;
  /// Threads per sweep (SweepRunner's pool); 0 = hardware concurrency.
  std::uint32_t sweep_threads = 0;
};

/// Daemon-level counters, serialized verbatim into the "stats" response.
struct ServeStats {
  std::uint64_t submits = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t coalesced = 0;
  std::uint64_t rejected = 0;
  std::uint64_t jobs_done = 0;
  std::uint64_t jobs_failed = 0;
  std::uint64_t jobs_cancelled = 0;
  /// Grid cells actually executed by the engine (a cache hit adds zero).
  std::uint64_t cells_computed = 0;
};

class Server {
 public:
  explicit Server(ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind the sockets, reload the persisted cache, start the workers.
  /// False (with a message) when an endpoint cannot be bound.
  [[nodiscard]] bool start(std::string* error);

  /// Accept and serve until shutdown is requested.  Returns true on a
  /// clean drain (the daemon's exit-0 condition).
  bool serve();

  /// Thread-safe and async-signal-safe shutdown trigger (one byte down the
  /// self-pipe).
  void request_shutdown();

  /// Snapshot of the daemon counters + cache stats (tests assert on these
  /// in-process; clients use the "stats" op).
  [[nodiscard]] ServeStats stats_snapshot();
  [[nodiscard]] CacheStats cache_stats_snapshot();

  /// Entries restored by start()'s cache reload (warm-restart assertion).
  [[nodiscard]] std::uint64_t cache_reloaded() const { return reloaded_; }

  /// Live client connections (tests assert that a disconnected client's fd
  /// and thread are reclaimed, not parked until shutdown).
  [[nodiscard]] std::size_t active_connections();
  /// Jobs currently held in the id-keyed table (bounded by
  /// max_retained_jobs plus whatever is still queued or running).
  [[nodiscard]] std::size_t jobs_table_size();

  [[nodiscard]] const std::string& socket_path() const {
    return options_.socket_path;
  }

 private:
  struct Job;
  class Connection;

  void accept_loop();
  void worker_loop();
  void connection_loop(int fd);

  /// Join connection threads that already deregistered themselves (called
  /// from the accept loop between polls and from the drain paths).
  void reap_finished_connections();
  /// Shut down every live connection, wait for each to deregister, then
  /// join the lot.  Jobs must all be terminal first — a streaming
  /// connection only exits once its job's state is terminal.
  void close_all_connections();

  /// Record a job as terminal and evict the oldest terminal jobs beyond
  /// max_retained_jobs.  Caller holds jobs_mutex_.
  void retire_job_locked(std::uint64_t job_id);

  /// op dispatchers — each returns frames over `fd` itself.
  void handle_submit(int fd, std::mutex& write_mutex,
                     const std::string& spec_text);
  void handle_status(int fd, std::mutex& write_mutex, std::uint64_t job_id);
  void handle_result(int fd, std::mutex& write_mutex, std::uint64_t job_id);
  void handle_cancel(int fd, std::mutex& write_mutex, std::uint64_t job_id);
  void handle_stats(int fd, std::mutex& write_mutex);

  void run_job(const std::shared_ptr<Job>& job);
  bool stream_job(int fd, std::mutex& write_mutex,
                  const std::shared_ptr<Job>& job);
  bool send_result(int fd, std::mutex& write_mutex, std::uint64_t job_id,
                   bool cached, const std::string& result);

  ServerOptions options_;
  ResultCache cache_;
  std::mutex cache_mutex_;
  std::uint64_t reloaded_ = 0;

  ServeStats stats_;
  std::mutex stats_mutex_;

  // Job table + queue + coalescing index, all under one mutex (job state
  // transitions are tiny; the engine runs outside it).
  std::mutex jobs_mutex_;
  std::condition_variable queue_cv_;
  std::deque<std::shared_ptr<Job>> queue_;
  std::unordered_map<std::uint64_t, std::shared_ptr<Job>> jobs_;
  std::unordered_map<std::string, std::shared_ptr<Job>> in_flight_;
  /// Terminal job ids, oldest first — the retention window behind
  /// max_retained_jobs.
  std::deque<std::uint64_t> retired_jobs_;
  std::uint64_t next_job_id_ = 1;
  bool draining_ = false;

  int unix_fd_ = -1;
  int tcp_fd_ = -1;
  int shutdown_pipe_[2] = {-1, -1};
  std::atomic<bool> shutdown_requested_{false};

  std::vector<std::thread> workers_;

  // Connection registry, keyed by fd.  A connection thread deregisters
  // ITSELF on exit: under connections_mutex_ it moves its thread handle to
  // finished_connections_ (a thread cannot join itself), erases its entry,
  // and closes the fd — so the shutdown broadcast only ever sees live fds,
  // and a long-running daemon holds no per-served-client residue.
  std::mutex connections_mutex_;
  std::condition_variable connections_cv_;
  std::unordered_map<int, std::thread> connections_;
  std::vector<std::thread> finished_connections_;
};

}  // namespace pef::serve
