// The spec-keyed result cache behind pef_serve.
//
// A cell's result is a pure function of its spec (deterministic seeds,
// thread-count-invariant JSON), so the daemon may memoize whole runs: the
// key is the CANONICAL single-line spec JSON (parse∘serialize of whatever
// the client sent), the value is the result document byte-identical to what
// pef_sweep / run_result_to_json would produce.  A hit costs zero engine
// rounds.
//
// Eviction is LRU under a byte budget (key + value bytes per entry).
// Persistence is one file per entry under a cache directory, named by the
// FNV-1a hash of the key — the same content-hash convention the
// orchestrator's ledger uses for spec identity — holding the key line and
// the value line (both are single-line JSON by construction).  Keys whose
// hashes collide get a "-N" filename suffix (the stored key line is the
// tiebreaker), so no entry ever clobbers another's file.  A restarted
// daemon reloads the directory and stays warm; files of evicted entries are
// removed so disk usage tracks the budget.
//
// Not internally synchronized: the server serializes access under its own
// mutex (lookups and inserts are map operations, far off the engine's hot
// path).
#pragma once

#include <cstdint>
#include <list>
#include <optional>
#include <string>
#include <unordered_map>

namespace pef::serve {

struct CacheStats {
  std::uint64_t entries = 0;
  std::uint64_t bytes = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;
  /// Entries reloaded from the cache directory at startup.
  std::uint64_t reloaded = 0;
};

class ResultCache {
 public:
  /// `byte_budget` caps sum(key + value sizes); 0 disables caching
  /// entirely.  `dir` enables persistence when non-empty (created if
  /// missing on first insert).
  ResultCache(std::uint64_t byte_budget, std::string dir);

  /// The cached result for this canonical spec JSON; bumps the entry to
  /// most-recently-used and counts a hit/miss.
  [[nodiscard]] std::optional<std::string> lookup(const std::string& key);

  /// Insert (or refresh) an entry, persist it, then evict LRU entries
  /// until the budget holds again.  An entry larger than the whole budget
  /// is evicted immediately — deterministically cached-nothing, never a
  /// budget overrun.
  void insert(const std::string& key, const std::string& result);

  /// Reload persisted entries (most useful before serving).  Returns the
  /// number of entries restored; unreadable or malformed files are skipped
  /// with a note appended to *warnings (newline-separated) when non-null.
  std::uint64_t load_from_disk(std::string* warnings);

  [[nodiscard]] const CacheStats& stats() const { return stats_; }

  /// The persistence file for a key (empty when persistence is off):
  /// the file under dir_ that stores this key, or the first free
  /// hash(-N).entry slot when none does yet.  Exposed for tests pinning
  /// the on-disk layout.
  [[nodiscard]] std::string entry_path(const std::string& key) const;

 private:
  struct Entry {
    std::string key;
    std::string value;
  };

  void evict_until_within_budget();
  void persist(const Entry& entry);
  void unpersist(const std::string& key);

  std::uint64_t byte_budget_;
  std::string dir_;
  /// Front = most recently used.
  std::list<Entry> lru_;
  std::unordered_map<std::string, std::list<Entry>::iterator> index_;
  CacheStats stats_;
};

}  // namespace pef::serve
