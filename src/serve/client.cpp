#include "serve/client.hpp"

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <thread>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "serve/protocol.hpp"

namespace pef::serve {

namespace {

/// Retry `attempt` every 100 ms until it succeeds or the deadline passes.
bool retry_connect(double timeout_seconds, const std::function<int()>& attempt,
                   int* out_fd) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(timeout_seconds);
  for (;;) {
    const int fd = attempt();
    if (fd >= 0) {
      *out_fd = fd;
      return true;
    }
    if (std::chrono::steady_clock::now() >= deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
}

}  // namespace

Client::~Client() { disconnect(); }

void Client::disconnect() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

bool Client::connect_unix(const std::string& socket_path,
                          double timeout_seconds, std::string* error) {
  disconnect();
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.size() >= sizeof addr.sun_path) {
    if (error != nullptr) *error = "socket path too long: " + socket_path;
    return false;
  }
  std::strncpy(addr.sun_path, socket_path.c_str(), sizeof addr.sun_path - 1);

  const auto attempt = [&addr]() -> int {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) return -1;
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof addr) == 0) {
      return fd;
    }
    ::close(fd);
    return -1;
  };
  if (!retry_connect(timeout_seconds, attempt, &fd_)) {
    if (error != nullptr) {
      *error = "cannot connect to " + socket_path + " within " +
               std::to_string(timeout_seconds) + "s — is pef_serve running?";
    }
    return false;
  }
  return true;
}

bool Client::connect_tcp(const std::string& host_port, double timeout_seconds,
                         std::string* error) {
  disconnect();
  const auto colon = host_port.rfind(':');
  if (colon == std::string::npos) {
    if (error != nullptr) {
      *error = "TCP endpoint must be host:port (got \"" + host_port + "\")";
    }
    return false;
  }
  const std::string host = host_port.substr(0, colon);
  const int port = std::atoi(host_port.c_str() + colon + 1);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (port <= 0 || port > 65535 ||
      ::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    if (error != nullptr) {
      *error = "cannot parse TCP endpoint \"" + host_port +
               "\" (IPv4 host:port)";
    }
    return false;
  }

  const auto attempt = [&addr]() -> int {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return -1;
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof addr) == 0) {
      return fd;
    }
    ::close(fd);
    return -1;
  };
  if (!retry_connect(timeout_seconds, attempt, &fd_)) {
    if (error != nullptr) {
      *error = "cannot connect to " + host_port + " within " +
               std::to_string(timeout_seconds) + "s — is pef_serve running?";
    }
    return false;
  }
  return true;
}

bool Client::send_frame(const std::string& payload, std::string* error) {
  return write_frame(fd_, payload, error);
}

bool Client::send_raw(const std::string& bytes, std::string* error) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd_, bytes.data() + sent, bytes.size() - sent,
                             MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      if (error != nullptr) {
        *error = std::string("send: ") + std::strerror(errno);
      }
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

std::optional<std::string> Client::read_frame_payload(std::string* error) {
  std::string payload;
  std::string frame_error;
  switch (read_frame(fd_, &payload, &frame_error)) {
    case FrameStatus::kOk:
      return payload;
    case FrameStatus::kEof:
      if (error != nullptr) error->clear();
      return std::nullopt;
    case FrameStatus::kOversized:
    case FrameStatus::kError:
      if (error != nullptr) *error = frame_error;
      return std::nullopt;
  }
  return std::nullopt;
}

std::optional<JsonValue> Client::request(const std::string& payload,
                                         std::string* error) {
  if (!send_frame(payload, error)) return std::nullopt;
  const auto response = read_frame_payload(error);
  if (!response) {
    if (error != nullptr && error->empty()) {
      *error = "server closed the connection";
    }
    return std::nullopt;
  }
  auto parsed = parse_json(*response, error);
  if (!parsed && error != nullptr) {
    *error = "malformed response frame: " + *error;
  }
  return parsed;
}

std::optional<std::string> Client::submit_and_stream(
    const std::string& spec_text, const ProgressFn& progress, bool* cached,
    std::uint64_t* job_id, std::string* error) {
  const auto fail = [error](const std::string& message) {
    if (error != nullptr) *error = message;
    return std::nullopt;
  };

  JsonWriter submit;
  submit.begin_object();
  submit.field("op", "submit");
  submit.field("spec_text", spec_text);
  submit.end_object();

  const auto ack = request(submit.str(), error);
  if (!ack) return std::nullopt;
  const JsonValue* ok = ack->find("ok");
  if (ok == nullptr || !ok->is_bool() || !ok->bool_value) {
    const JsonValue* message = ack->find("error");
    return fail(message != nullptr && message->is_string()
                    ? message->string_value
                    : "server refused the submission");
  }
  if (const JsonValue* job = ack->find("job");
      job_id != nullptr && job != nullptr && job->is_uint) {
    *job_id = job->uint_value;
  }
  if (const JsonValue* was_cached = ack->find("cached");
      cached != nullptr && was_cached != nullptr && was_cached->is_bool()) {
    *cached = was_cached->bool_value;
  }

  // Event stream: progress frames until the result header, then one raw
  // frame holding exactly the advertised bytes.
  for (;;) {
    const auto frame = read_frame_payload(error);
    if (!frame) {
      if (error != nullptr && error->empty()) {
        *error = "server closed the connection before the result";
      }
      return std::nullopt;
    }
    const auto event = parse_json(*frame, error);
    if (!event || !event->is_object()) {
      return fail("malformed event frame from server");
    }
    if (const JsonValue* event_ok = event->find("ok");
        event_ok != nullptr && event_ok->is_bool() && !event_ok->bool_value) {
      const JsonValue* message = event->find("error");
      return fail(message != nullptr && message->is_string()
                      ? message->string_value
                      : "job failed");
    }
    const JsonValue* kind = event->find("event");
    if (kind == nullptr || !kind->is_string()) {
      return fail("event frame without an \"event\" field");
    }
    if (kind->string_value == "progress") {
      if (progress) {
        const JsonValue* done = event->find("done");
        const JsonValue* total = event->find("total");
        const JsonValue* wall = event->find("cell_wall_seconds");
        progress(done != nullptr && done->is_uint ? done->uint_value : 0,
                 total != nullptr && total->is_uint ? total->uint_value : 0,
                 wall != nullptr && wall->is_number() ? wall->number_value
                                                      : 0);
      }
      continue;
    }
    if (kind->string_value == "result") {
      const JsonValue* bytes = event->find("bytes");
      const auto result = read_frame_payload(error);
      if (!result) {
        if (error != nullptr && error->empty()) {
          *error = "server closed the connection mid-result";
        }
        return std::nullopt;
      }
      if (bytes != nullptr && bytes->is_uint &&
          bytes->uint_value != result->size()) {
        return fail("result frame size mismatch (header advertised " +
                    std::to_string(bytes->uint_value) + " bytes, got " +
                    std::to_string(result->size()) + ")");
      }
      return result;
    }
    return fail("unexpected event \"" + kind->string_value + "\"");
  }
}

}  // namespace pef::serve
