#include "serve/server.hpp"

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <optional>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "common/json.hpp"
#include "core/experiment.hpp"
#include "core/spec.hpp"
#include "engine/sweep_runner.hpp"
#include "serve/protocol.hpp"

namespace pef::serve {

namespace {

/// One frame under the connection's write mutex (a worker-free design —
/// only the connection's own thread writes — but the mutex keeps the
/// invariant explicit and cheap).
bool send_frame(int fd, std::mutex& write_mutex, const std::string& payload) {
  std::lock_guard<std::mutex> lock(write_mutex);
  std::string error;
  return write_frame(fd, payload, &error);
}

bool close_fd(int& fd) {
  if (fd < 0) return false;
  ::close(fd);
  fd = -1;
  return true;
}

}  // namespace

// ---------------------------------------------------------------------------
// Job

struct Server::Job {
  enum class State : std::uint8_t {
    kQueued = 0,
    kRunning,
    kDone,
    kFailed,
    kCancelled,
  };

  std::uint64_t id = 0;
  /// Canonical spec JSON — the cache key and coalescing identity.
  std::string key;
  bool is_sweep = false;
  ScenarioSpec scenario;
  SweepSpec sweep;

  /// Set by handle_cancel on a RUNNING sweep job; SweepRunner polls it
  /// between seed groups, so the job stops at the next group boundary.
  std::atomic<bool> cancel_requested{false};

  std::mutex mutex;
  std::condition_variable cv;
  State state = State::kQueued;
  std::uint64_t done_cells = 0;
  std::uint64_t total_cells = 0;
  double last_cell_wall = 0;
  /// Bumped on every progress update so waiters never miss one.
  std::uint64_t progress_version = 0;
  std::string result;
  std::string error;
};

namespace {

const char* state_name(std::uint8_t state) {
  switch (state) {
    case 0: return "queued";
    case 1: return "running";
    case 2: return "done";
    case 3: return "failed";
    case 4: return "cancelled";
  }
  return "?";
}

}  // namespace

// ---------------------------------------------------------------------------
// Lifecycle

Server::Server(ServerOptions options)
    : options_(std::move(options)),
      cache_(options_.cache_bytes, options_.cache_dir) {}

Server::~Server() {
  request_shutdown();
  // serve() joins everything; a Server destroyed without serve() still has
  // workers to collect.
  {
    std::lock_guard<std::mutex> lock(jobs_mutex_);
    draining_ = true;
  }
  queue_cv_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  close_all_connections();
  close_fd(unix_fd_);
  close_fd(tcp_fd_);
  close_fd(shutdown_pipe_[0]);
  close_fd(shutdown_pipe_[1]);
  if (!options_.socket_path.empty()) ::unlink(options_.socket_path.c_str());
}

bool Server::start(std::string* error) {
  const auto fail = [error](const std::string& message) {
    if (error != nullptr) *error = message;
    return false;
  };
  if (options_.socket_path.empty()) {
    return fail("a Unix socket path is required (--socket)");
  }

  if (::pipe(shutdown_pipe_) != 0) {
    return fail(std::string("pipe: ") + std::strerror(errno));
  }

  // Unix socket.  A stale socket file from a crashed daemon is the normal
  // case; a LIVE daemon on the same path is detected by the bind itself
  // only after the unlink, so probe with a connect first.
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (options_.socket_path.size() >= sizeof addr.sun_path) {
    return fail("socket path too long: " + options_.socket_path);
  }
  std::strncpy(addr.sun_path, options_.socket_path.c_str(),
               sizeof addr.sun_path - 1);
  const int probe = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (probe >= 0) {
    if (::connect(probe, reinterpret_cast<sockaddr*>(&addr), sizeof addr) ==
        0) {
      ::close(probe);
      return fail("another daemon is already serving " +
                  options_.socket_path);
    }
    ::close(probe);
  }
  ::unlink(options_.socket_path.c_str());

  unix_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (unix_fd_ < 0) {
    return fail(std::string("socket: ") + std::strerror(errno));
  }
  if (::bind(unix_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) !=
          0 ||
      ::listen(unix_fd_, 64) != 0) {
    return fail("cannot listen on " + options_.socket_path + ": " +
                std::strerror(errno));
  }

  // Optional TCP endpoint.
  if (!options_.listen.empty()) {
    const auto colon = options_.listen.rfind(':');
    if (colon == std::string::npos) {
      return fail("--listen must be host:port (got \"" + options_.listen +
                  "\")");
    }
    const std::string host = options_.listen.substr(0, colon);
    const int port = std::atoi(options_.listen.c_str() + colon + 1);
    if (port <= 0 || port > 65535) {
      return fail("--listen port out of range in \"" + options_.listen +
                  "\"");
    }
    sockaddr_in inet_addr{};
    inet_addr.sin_family = AF_INET;
    inet_addr.sin_port = htons(static_cast<std::uint16_t>(port));
    if (::inet_pton(AF_INET, host.c_str(), &inet_addr.sin_addr) != 1) {
      return fail("--listen host must be an IPv4 address (got \"" + host +
                  "\")");
    }
    tcp_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (tcp_fd_ < 0) {
      return fail(std::string("socket: ") + std::strerror(errno));
    }
    const int one = 1;
    ::setsockopt(tcp_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    if (::bind(tcp_fd_, reinterpret_cast<sockaddr*>(&inet_addr),
               sizeof inet_addr) != 0 ||
        ::listen(tcp_fd_, 64) != 0) {
      return fail("cannot listen on " + options_.listen + ": " +
                  std::strerror(errno));
    }
  }

  // Warm restart: reload whatever the previous daemon persisted.
  {
    std::lock_guard<std::mutex> lock(cache_mutex_);
    reloaded_ = cache_.load_from_disk(nullptr);
  }

  const std::uint32_t workers = options_.workers == 0 ? 1 : options_.workers;
  workers_.reserve(workers);
  for (std::uint32_t w = 0; w < workers; ++w) {
    workers_.emplace_back([this] { worker_loop(); });
  }
  return true;
}

void Server::request_shutdown() {
  bool expected = false;
  if (!shutdown_requested_.compare_exchange_strong(expected, true)) return;
  // Async-signal-safe: only a write().
  if (shutdown_pipe_[1] >= 0) {
    const char byte = 1;
    [[maybe_unused]] const ssize_t n =
        ::write(shutdown_pipe_[1], &byte, 1);
  }
}

bool Server::serve() {
  accept_loop();

  // Drain: refuse new submissions, cancel still-queued jobs, let running
  // jobs finish, then collect every thread.
  std::vector<std::shared_ptr<Job>> cancelled;
  {
    std::lock_guard<std::mutex> lock(jobs_mutex_);
    draining_ = true;
    while (!queue_.empty()) {
      cancelled.push_back(queue_.front());
      queue_.pop_front();
    }
    for (const auto& job : cancelled) {
      in_flight_.erase(job->key);
      retire_job_locked(job->id);
    }
  }
  for (const auto& job : cancelled) {
    {
      std::lock_guard<std::mutex> lock(job->mutex);
      job->state = Job::State::kCancelled;
      job->error = "server shutting down";
    }
    job->cv.notify_all();
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.jobs_cancelled;
  }
  queue_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
  workers_.clear();

  // In-flight results are delivered before the sockets drop: workers have
  // finished (join above), so every surviving connection either already
  // holds its result frames or is blocked reading the next request.
  close_all_connections();

  close_fd(unix_fd_);
  close_fd(tcp_fd_);
  if (!options_.socket_path.empty()) ::unlink(options_.socket_path.c_str());
  return true;
}

void Server::accept_loop() {
  for (;;) {
    pollfd fds[3];
    nfds_t count = 0;
    fds[count++] = {shutdown_pipe_[0], POLLIN, 0};
    const nfds_t unix_slot = count;
    if (unix_fd_ >= 0) fds[count++] = {unix_fd_, POLLIN, 0};
    const nfds_t tcp_slot = count;
    if (tcp_fd_ >= 0) fds[count++] = {tcp_fd_, POLLIN, 0};

    if (::poll(fds, count, -1) < 0) {
      if (errno == EINTR) continue;
      return;
    }
    // Join whichever connection threads exited since the last wake —
    // cheap (they already deregistered) and keeps the thread count
    // proportional to LIVE clients, not clients ever served.
    reap_finished_connections();
    if ((fds[0].revents & POLLIN) != 0) return;  // shutdown byte

    for (nfds_t slot = 1; slot < count; ++slot) {
      if ((fds[slot].revents & POLLIN) == 0) continue;
      const int listen_fd = slot == unix_slot ? unix_fd_ : tcp_fd_;
      (void)tcp_slot;
      const int fd = ::accept(listen_fd, nullptr, nullptr);
      if (fd < 0) continue;
      // Registering under the lock closes the race against a connection
      // so short-lived it deregisters before the emplace lands.
      std::lock_guard<std::mutex> lock(connections_mutex_);
      connections_.emplace(fd,
                           std::thread([this, fd] { connection_loop(fd); }));
    }
  }
}

void Server::reap_finished_connections() {
  std::vector<std::thread> finished;
  {
    std::lock_guard<std::mutex> lock(connections_mutex_);
    finished.swap(finished_connections_);
  }
  for (std::thread& connection : finished) connection.join();
}

void Server::close_all_connections() {
  {
    std::unique_lock<std::mutex> lock(connections_mutex_);
    for (auto& [fd, thread] : connections_) ::shutdown(fd, SHUT_RDWR);
    // wait() releases the mutex, so each connection can deregister itself;
    // every job is terminal by now, so no stream outlives its socket.
    connections_cv_.wait(lock, [this] { return connections_.empty(); });
  }
  reap_finished_connections();
}

// ---------------------------------------------------------------------------
// Connections

void Server::connection_loop(int fd) {
  std::mutex write_mutex;
  for (;;) {
    std::string payload;
    std::string error;
    const FrameStatus status = read_frame(fd, &payload, &error);
    if (status == FrameStatus::kEof || status == FrameStatus::kError) {
      break;
    }
    if (status == FrameStatus::kOversized) {
      (void)send_frame(fd, write_mutex, error_frame(error));
      break;  // the stream position is unknown — close
    }

    std::string parse_error;
    const auto request = parse_json(payload, &parse_error);
    if (!request || !request->is_object()) {
      (void)send_frame(
          fd, write_mutex,
          error_frame("malformed request frame: " +
                      (parse_error.empty() ? "not a JSON object"
                                           : parse_error)));
      break;  // framing may be desynchronized — close
    }
    const JsonValue* op = request->find("op");
    if (op == nullptr || !op->is_string()) {
      (void)send_frame(fd, write_mutex,
                       error_frame("request needs a string \"op\""));
      continue;
    }

    const auto job_id_arg = [&request](std::uint64_t* out) {
      const JsonValue* job = request->find("job");
      if (job == nullptr || !job->is_number() || !job->is_uint) return false;
      *out = job->uint_value;
      return true;
    };

    if (op->string_value == "submit") {
      const JsonValue* spec_text = request->find("spec_text");
      if (spec_text == nullptr || !spec_text->is_string()) {
        (void)send_frame(
            fd, write_mutex,
            error_frame("submit needs a string \"spec_text\" holding the "
                        "spec document"));
        continue;
      }
      handle_submit(fd, write_mutex, spec_text->string_value);
    } else if (op->string_value == "status") {
      std::uint64_t job_id = 0;
      if (!job_id_arg(&job_id)) {
        (void)send_frame(fd, write_mutex,
                         error_frame("status needs an integer \"job\""));
        continue;
      }
      handle_status(fd, write_mutex, job_id);
    } else if (op->string_value == "result") {
      std::uint64_t job_id = 0;
      if (!job_id_arg(&job_id)) {
        (void)send_frame(fd, write_mutex,
                         error_frame("result needs an integer \"job\""));
        continue;
      }
      handle_result(fd, write_mutex, job_id);
    } else if (op->string_value == "cancel") {
      std::uint64_t job_id = 0;
      if (!job_id_arg(&job_id)) {
        (void)send_frame(fd, write_mutex,
                         error_frame("cancel needs an integer \"job\""));
        continue;
      }
      handle_cancel(fd, write_mutex, job_id);
    } else if (op->string_value == "stats") {
      handle_stats(fd, write_mutex);
    } else if (op->string_value == "shutdown") {
      JsonWriter json;
      json.begin_object();
      json.field("ok", true);
      json.field("shutting_down", true);
      json.end_object();
      (void)send_frame(fd, write_mutex, json.str());
      request_shutdown();
    } else {
      (void)send_frame(
          fd, write_mutex,
          error_frame("unknown op \"" + op->string_value +
                      "\" (ops: submit, status, result, cancel, stats, "
                      "shutdown)"));
    }
  }
  ::shutdown(fd, SHUT_RDWR);
  // Self-reclaim: deregister (so the shutdown broadcast can no longer see
  // this fd), close it while still holding the lock (so a kernel-reused fd
  // number can't be mistaken for this registration), and park the thread
  // handle for the accept loop / drain to join.  pef_client opens one
  // connection per command, so a daemon that parked fds until shutdown
  // would hit EMFILE after ~1024 client interactions.
  {
    std::lock_guard<std::mutex> lock(connections_mutex_);
    const auto it = connections_.find(fd);
    if (it != connections_.end()) {
      finished_connections_.push_back(std::move(it->second));
      connections_.erase(it);
    }
    ::close(fd);
  }
  connections_cv_.notify_all();
}

// ---------------------------------------------------------------------------
// submit

void Server::handle_submit(int fd, std::mutex& write_mutex,
                           const std::string& spec_text) {
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.submits;
  }

  // Parse with the strict spec parser.  The error frame keeps the JSON
  // parser's "line L, column C" message verbatim — a client fixing a typo
  // in a 40-line sweep file needs the position, not a summary.
  std::string error;
  const auto document = parse_json(spec_text, &error);
  if (!document) {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.rejected;
    (void)send_frame(fd, write_mutex, error_frame("invalid spec: " + error));
    return;
  }

  // Kind auto-detection: a sweep grid has "algorithms" (plural axis), a
  // scenario has at most "algorithm".
  const bool is_sweep =
      document->is_object() && document->find("algorithms") != nullptr;
  ScenarioSpec scenario;
  SweepSpec sweep;
  std::string key;
  std::uint64_t total_cells = 0;
  if (is_sweep) {
    const auto parsed = sweep_spec_from_json(*document, &error);
    if (!parsed) {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.rejected;
      (void)send_frame(fd, write_mutex,
                       error_frame("invalid sweep spec: " + error));
      return;
    }
    sweep = *parsed;
    if (const auto invalid = sweep.validate()) {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.rejected;
      (void)send_frame(fd, write_mutex,
                       error_frame("invalid sweep spec: " + *invalid));
      return;
    }
    key = sweep.to_json();
    total_cells = count_sweep_cells(sweep);
  } else {
    const auto parsed = scenario_spec_from_json(*document, &error);
    if (!parsed) {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.rejected;
      (void)send_frame(fd, write_mutex,
                       error_frame("invalid scenario spec: " + error));
      return;
    }
    scenario = *parsed;
    if (const auto invalid = scenario.validate()) {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.rejected;
      (void)send_frame(fd, write_mutex,
                       error_frame("invalid scenario spec: " + *invalid));
      return;
    }
    key = scenario.to_json();
    total_cells = 1;
  }

  // Cache hit: zero compute, the result streams immediately.
  std::optional<std::string> cached;
  {
    std::lock_guard<std::mutex> lock(cache_mutex_);
    cached = cache_.lookup(key);
  }
  if (cached) {
    {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.cache_hits;
    }
    JsonWriter ack;
    ack.begin_object();
    ack.field("ok", true);
    ack.field("job", std::uint64_t{0});  // no job: served from cache
    ack.field("cached", true);
    ack.field("total_cells", total_cells);
    ack.end_object();
    if (!send_frame(fd, write_mutex, ack.str())) return;
    (void)send_result(fd, write_mutex, 0, true, *cached);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.cache_misses;
  }

  // Miss: coalesce onto an identical in-flight job, or queue a new one.
  std::shared_ptr<Job> job;
  bool coalesced = false;
  {
    std::lock_guard<std::mutex> lock(jobs_mutex_);
    if (draining_) {
      std::lock_guard<std::mutex> stats_lock(stats_mutex_);
      ++stats_.rejected;
      (void)send_frame(
          fd, write_mutex,
          error_frame("server is draining and refuses new submissions"));
      return;
    }
    const auto it = in_flight_.find(key);
    if (it != in_flight_.end()) {
      job = it->second;
      coalesced = true;
    } else {
      if (queue_.size() >= options_.max_queue) {
        std::lock_guard<std::mutex> stats_lock(stats_mutex_);
        ++stats_.rejected;
        (void)send_frame(
            fd, write_mutex,
            error_frame("job queue is full (" +
                        std::to_string(options_.max_queue) +
                        " queued); retry later"));
        return;
      }
      job = std::make_shared<Job>();
      job->id = next_job_id_++;
      job->key = key;
      job->is_sweep = is_sweep;
      job->scenario = scenario;
      job->sweep = sweep;
      job->total_cells = total_cells;
      jobs_[job->id] = job;
      in_flight_[key] = job;
      queue_.push_back(job);
    }
  }
  if (coalesced) {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.coalesced;
  } else {
    queue_cv_.notify_one();
  }

  JsonWriter ack;
  ack.begin_object();
  ack.field("ok", true);
  ack.field("job", job->id);
  ack.field("cached", false);
  ack.field("coalesced", coalesced);
  ack.field("total_cells", total_cells);
  ack.end_object();
  if (!send_frame(fd, write_mutex, ack.str())) return;

  (void)stream_job(fd, write_mutex, job);
}

// ---------------------------------------------------------------------------
// Workers

void Server::worker_loop() {
  for (;;) {
    std::shared_ptr<Job> job;
    {
      std::unique_lock<std::mutex> lock(jobs_mutex_);
      queue_cv_.wait(lock, [this] { return !queue_.empty() || draining_; });
      if (queue_.empty()) return;  // draining and nothing left
      job = queue_.front();
      queue_.pop_front();
    }
    run_job(job);
  }
}

void Server::run_job(const std::shared_ptr<Job>& job) {
  {
    std::lock_guard<std::mutex> lock(job->mutex);
    if (job->state != Job::State::kQueued) return;  // cancelled while queued
    job->state = Job::State::kRunning;
    ++job->progress_version;
  }
  job->cv.notify_all();

  std::string result;
  std::uint64_t cells = 0;
  bool failed = false;
  bool cancelled = false;
  std::string failure;
  try {
    if (job->is_sweep) {
      const SweepRunner runner(options_.sweep_threads);
      const SweepResult sweep_result = runner.run(
          job->sweep, {},
          [&job](std::uint64_t done, std::uint64_t total, double wall) {
            {
              std::lock_guard<std::mutex> lock(job->mutex);
              job->done_cells = done;
              job->total_cells = total;
              job->last_cell_wall = wall;
              ++job->progress_version;
            }
            job->cv.notify_all();
          },
          [&job] {
            return job->cancel_requested.load(std::memory_order_relaxed);
          });
      cancelled = sweep_result.cancelled;
      if (!cancelled) {
        result = sweep_result.to_json();
        cells = sweep_result.cells.size();
      }
    } else {
      result = run_result_to_json(run_scenario(job->scenario));
      cells = 1;
    }
  } catch (const std::exception& exception) {
    failed = true;
    failure = exception.what();
  }

  if (!failed && !cancelled) {
    std::lock_guard<std::mutex> lock(cache_mutex_);
    cache_.insert(job->key, result);
  }
  {
    std::lock_guard<std::mutex> lock(jobs_mutex_);
    in_flight_.erase(job->key);
    retire_job_locked(job->id);
  }
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    if (failed) {
      ++stats_.jobs_failed;
    } else if (cancelled) {
      ++stats_.jobs_cancelled;
    } else {
      ++stats_.jobs_done;
      stats_.cells_computed += cells;
    }
  }
  {
    std::lock_guard<std::mutex> lock(job->mutex);
    job->state = failed      ? Job::State::kFailed
                 : cancelled ? Job::State::kCancelled
                             : Job::State::kDone;
    job->error = cancelled ? "cancelled by client" : failure;
    job->result = std::move(result);
    job->done_cells = cells;
    ++job->progress_version;
  }
  job->cv.notify_all();
}

void Server::retire_job_locked(std::uint64_t job_id) {
  // Subscribers still streaming hold their own shared_ptr; dropping the
  // table entry only ends id-based status/result lookups.  The result
  // itself stays reachable through the cache keyed by spec.
  retired_jobs_.push_back(job_id);
  while (retired_jobs_.size() > options_.max_retained_jobs) {
    jobs_.erase(retired_jobs_.front());
    retired_jobs_.pop_front();
  }
}

// ---------------------------------------------------------------------------
// Streaming

bool Server::stream_job(int fd, std::mutex& write_mutex,
                        const std::shared_ptr<Job>& job) {
  std::uint64_t seen_version = 0;
  for (;;) {
    Job::State state;
    std::uint64_t done = 0;
    std::uint64_t total = 0;
    double wall = 0;
    std::string result;
    std::string failure;
    {
      std::unique_lock<std::mutex> lock(job->mutex);
      job->cv.wait(lock, [&job, seen_version] {
        return job->progress_version != seen_version;
      });
      seen_version = job->progress_version;
      state = job->state;
      done = job->done_cells;
      total = job->total_cells;
      wall = job->last_cell_wall;
      if (state == Job::State::kDone) result = job->result;
      if (state == Job::State::kFailed ||
          state == Job::State::kCancelled) {
        failure = job->error;
      }
    }

    switch (state) {
      case Job::State::kQueued:
      case Job::State::kRunning: {
        JsonWriter progress;
        progress.begin_object();
        progress.field("event", "progress");
        progress.field("job", job->id);
        progress.field("done", done);
        progress.field("total", total);
        progress.field("cell_wall_seconds", wall);
        progress.end_object();
        // A dead client stops the stream but never the job: the worker
        // owns the run, and the result still lands in the cache.
        if (!send_frame(fd, write_mutex, progress.str())) return false;
        break;
      }
      case Job::State::kDone: {
        // Progress frames are lossy while running (a fast job can finish
        // before its streamer wakes), but the terminal done==total frame
        // is guaranteed, so every subscriber sees at least one.
        JsonWriter final_progress;
        final_progress.begin_object();
        final_progress.field("event", "progress");
        final_progress.field("job", job->id);
        final_progress.field("done", done);
        final_progress.field("total", total);
        final_progress.field("cell_wall_seconds", wall);
        final_progress.end_object();
        if (!send_frame(fd, write_mutex, final_progress.str())) return false;
        return send_result(fd, write_mutex, job->id, false, result);
      }
      case Job::State::kFailed:
        return send_frame(fd, write_mutex,
                          error_frame("job failed: " + failure));
      case Job::State::kCancelled:
        return send_frame(fd, write_mutex,
                          error_frame("job cancelled: " + failure));
    }
  }
}

bool Server::send_result(int fd, std::mutex& write_mutex,
                         std::uint64_t job_id, bool cached,
                         const std::string& result) {
  // Never advertise bytes that cannot ship: write_frame refuses payloads
  // over kMaxFrameBytes, and a client that read the header would block
  // forever waiting for the promised result frame.
  if (result.size() > kMaxFrameBytes) {
    return send_frame(
        fd, write_mutex,
        error_frame("result of " + std::to_string(result.size()) +
                    " bytes exceeds the " + std::to_string(kMaxFrameBytes) +
                    "-byte frame limit"));
  }
  JsonWriter header;
  header.begin_object();
  header.field("event", "result");
  header.field("job", job_id);
  header.field("cached", cached);
  header.field("bytes", static_cast<std::uint64_t>(result.size()));
  header.end_object();
  // Two frames: the JSON header, then the raw result bytes.  The raw frame
  // is what keeps the client's output byte-identical to pef_sweep's.
  std::lock_guard<std::mutex> lock(write_mutex);
  std::string error;
  return write_frame(fd, header.str(), &error) &&
         write_frame(fd, result, &error);
}

// ---------------------------------------------------------------------------
// status / result / cancel / stats

void Server::handle_status(int fd, std::mutex& write_mutex,
                           std::uint64_t job_id) {
  std::shared_ptr<Job> job;
  {
    std::lock_guard<std::mutex> lock(jobs_mutex_);
    const auto it = jobs_.find(job_id);
    if (it != jobs_.end()) job = it->second;
  }
  if (!job) {
    (void)send_frame(fd, write_mutex,
                     error_frame("unknown job " + std::to_string(job_id)));
    return;
  }
  JsonWriter json;
  json.begin_object();
  json.field("ok", true);
  json.field("job", job->id);
  {
    std::lock_guard<std::mutex> lock(job->mutex);
    json.field("state", state_name(static_cast<std::uint8_t>(job->state)));
    json.field("done", job->done_cells);
    json.field("total", job->total_cells);
    if (!job->error.empty()) json.field("error", job->error);
  }
  json.end_object();
  (void)send_frame(fd, write_mutex, json.str());
}

void Server::handle_result(int fd, std::mutex& write_mutex,
                           std::uint64_t job_id) {
  std::shared_ptr<Job> job;
  {
    std::lock_guard<std::mutex> lock(jobs_mutex_);
    const auto it = jobs_.find(job_id);
    if (it != jobs_.end()) job = it->second;
  }
  if (!job) {
    (void)send_frame(fd, write_mutex,
                     error_frame("unknown job " + std::to_string(job_id)));
    return;
  }
  std::string result;
  {
    std::lock_guard<std::mutex> lock(job->mutex);
    if (job->state != Job::State::kDone) {
      (void)send_frame(
          fd, write_mutex,
          error_frame("job " + std::to_string(job_id) + " is " +
                      state_name(static_cast<std::uint8_t>(job->state)) +
                      ", not done"));
      return;
    }
    result = job->result;
  }
  (void)send_result(fd, write_mutex, job_id, false, result);
}

void Server::handle_cancel(int fd, std::mutex& write_mutex,
                           std::uint64_t job_id) {
  std::shared_ptr<Job> job;
  bool cancelled = false;
  bool cancelling = false;
  std::string state_label;
  {
    std::lock_guard<std::mutex> lock(jobs_mutex_);
    const auto it = jobs_.find(job_id);
    if (it != jobs_.end()) job = it->second;
    if (job) {
      std::lock_guard<std::mutex> job_lock(job->mutex);
      if (job->state == Job::State::kQueued) {
        // A queued job dies immediately: drop it from the queue and mark
        // it terminal right here.
        for (auto it2 = queue_.begin(); it2 != queue_.end(); ++it2) {
          if ((*it2)->id == job_id) {
            queue_.erase(it2);
            break;
          }
        }
        in_flight_.erase(job->key);
        job->state = Job::State::kCancelled;
        job->error = "cancelled by client";
        ++job->progress_version;
        retire_job_locked(job_id);
        cancelled = true;
      } else if (job->state == Job::State::kRunning && job->is_sweep) {
        // A running sweep stops cooperatively: the worker polls this flag
        // between seed groups and retires the job as kCancelled itself
        // (which also bumps jobs_cancelled — not here, or it would double
        // count).  Scenario jobs are one indivisible engine run and just
        // complete.
        job->cancel_requested.store(true, std::memory_order_relaxed);
        cancelling = true;
      } else {
        state_label = state_name(static_cast<std::uint8_t>(job->state));
      }
    }
  }
  // Every frame goes out AFTER both mutexes are released: a stalled
  // client's full socket buffer blocking a send while jobs_mutex_ is held
  // would freeze the workers, all submissions, and stats with it.
  if (!job) {
    (void)send_frame(fd, write_mutex,
                     error_frame("unknown job " + std::to_string(job_id)));
    return;
  }
  if (!cancelled && !cancelling) {
    (void)send_frame(
        fd, write_mutex,
        error_frame("job " + std::to_string(job_id) + " is " + state_label +
                    " — only queued jobs and running sweeps can be "
                    "cancelled"));
    return;
  }
  if (cancelled) {
    job->cv.notify_all();
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.jobs_cancelled;
  }
  JsonWriter json;
  json.begin_object();
  json.field("ok", true);
  json.field("job", job_id);
  json.field("cancelled", true);
  json.end_object();
  (void)send_frame(fd, write_mutex, json.str());
}

void Server::handle_stats(int fd, std::mutex& write_mutex) {
  const ServeStats stats = stats_snapshot();
  const CacheStats cache = cache_stats_snapshot();
  bool draining;
  std::uint64_t queued;
  {
    std::lock_guard<std::mutex> lock(jobs_mutex_);
    draining = draining_;
    queued = queue_.size();
  }
  JsonWriter json;
  json.begin_object();
  json.field("ok", true);
  json.begin_object("stats");
  json.field("submits", stats.submits);
  json.field("cache_hits", stats.cache_hits);
  json.field("cache_misses", stats.cache_misses);
  json.field("coalesced", stats.coalesced);
  json.field("rejected", stats.rejected);
  json.field("jobs_done", stats.jobs_done);
  json.field("jobs_failed", stats.jobs_failed);
  json.field("jobs_cancelled", stats.jobs_cancelled);
  json.field("cells_computed", stats.cells_computed);
  json.field("queued", queued);
  json.end_object();
  json.begin_object("cache");
  json.field("entries", cache.entries);
  json.field("bytes", cache.bytes);
  json.field("hits", cache.hits);
  json.field("misses", cache.misses);
  json.field("insertions", cache.insertions);
  json.field("evictions", cache.evictions);
  json.field("reloaded", cache.reloaded);
  json.end_object();
  json.field("draining", draining);
  json.end_object();
  (void)send_frame(fd, write_mutex, json.str());
}

ServeStats Server::stats_snapshot() {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  return stats_;
}

CacheStats Server::cache_stats_snapshot() {
  std::lock_guard<std::mutex> lock(cache_mutex_);
  return cache_.stats();
}

std::size_t Server::active_connections() {
  std::lock_guard<std::mutex> lock(connections_mutex_);
  return connections_.size();
}

std::size_t Server::jobs_table_size() {
  std::lock_guard<std::mutex> lock(jobs_mutex_);
  return jobs_.size();
}

}  // namespace pef::serve
