// The pef_serve wire protocol: length-prefixed JSON frames.
//
// Every message is one frame: a 4-byte big-endian payload length followed
// by that many bytes of UTF-8 JSON.  Both directions use the same framing;
// the only non-JSON payload is a result document, which is shipped as raw
// bytes in its own frame right after a {"event":"result", ...} header frame
// — that is what makes the client's output byte-identical to pef_sweep's
// (no re-serialization anywhere between the engine and the client's file).
//
// Requests (client -> server), dispatched on "op":
//   {"op":"submit","spec_text":"<raw spec file text>"}
//   {"op":"status","job":N}
//   {"op":"result","job":N}
//   {"op":"cancel","job":N}
//   {"op":"stats"}
//   {"op":"shutdown"}
//
// Responses (server -> client):
//   {"ok":true, ...}                         op-specific acknowledgement
//   {"ok":false,"error":"message"}           any failure (spec parse errors
//                                            keep the parser's line/column)
//   {"event":"progress","done":D,"total":T,"cell_wall_seconds":S}
//   {"event":"result","job":N,"cached":B,"bytes":L}   + one raw frame of L
//                                                       result bytes
//
// A frame longer than kMaxFrameBytes is refused without reading its payload
// (the server answers with an error frame, then closes).  Frames are small
// enough to build in memory; results of realistic sweeps are a few MB.
#pragma once

#include <cstdint>
#include <string>

namespace pef::serve {

/// Ceiling on one frame's payload.  Oversized submissions are a protocol
/// error, not an allocation: the length word is validated before any
/// payload byte is read or buffered.
inline constexpr std::uint32_t kMaxFrameBytes = 64u << 20;  // 64 MiB

enum class FrameStatus : std::uint8_t {
  kOk = 0,
  /// Clean end-of-stream on a frame boundary (peer closed).
  kEof,
  /// Declared length exceeds kMaxFrameBytes; nothing further was read.
  kOversized,
  /// Short read mid-frame, or a socket error (message in *error).
  kError,
};

/// Read one frame from `fd` (blocking).  On kOk, *payload holds the bytes.
[[nodiscard]] FrameStatus read_frame(int fd, std::string* payload,
                                     std::string* error);

/// Write one frame (blocking, SIGPIPE suppressed).  False on any short
/// write or error — e.g. the peer disconnected mid-stream.
[[nodiscard]] bool write_frame(int fd, const std::string& payload,
                               std::string* error);

/// {"ok":false,"error":message} — the uniform failure frame.
[[nodiscard]] std::string error_frame(const std::string& message);

}  // namespace pef::serve
