// Client side of the pef_serve protocol: connect, submit, stream.
//
// A thin synchronous library over serve/protocol.hpp — pef_client is a flag
// parser around it, and serve_test drives failure paths through it.  All
// calls block; errors come back as messages, never exceptions.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>

#include "common/json.hpp"

namespace pef::serve {

class Client {
 public:
  Client() = default;
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Connect to the daemon's Unix socket, retrying (100 ms apart) until
  /// `timeout_seconds` elapses — covers the races where the daemon is still
  /// binding.  False with a message on timeout.
  [[nodiscard]] bool connect_unix(const std::string& socket_path,
                                  double timeout_seconds,
                                  std::string* error);

  /// Connect to a TCP endpoint ("host:port", IPv4).
  [[nodiscard]] bool connect_tcp(const std::string& host_port,
                                 double timeout_seconds, std::string* error);

  [[nodiscard]] bool connected() const { return fd_ >= 0; }
  void disconnect();

  /// Raw frame I/O (tests use these to speak malformed protocol on
  /// purpose; send_raw writes bytes with no length prefix).
  [[nodiscard]] bool send_frame(const std::string& payload,
                                std::string* error);
  [[nodiscard]] bool send_raw(const std::string& bytes, std::string* error);
  /// nullopt on EOF or error (message in *error; empty message = clean EOF).
  [[nodiscard]] std::optional<std::string> read_frame_payload(
      std::string* error);

  /// Send one request object and read one response frame, parsed.  A
  /// response {"ok":false,...} is returned as-is (callers inspect it).
  [[nodiscard]] std::optional<JsonValue> request(const std::string& payload,
                                                std::string* error);

  /// Progress observer for submit_and_stream.
  using ProgressFn = std::function<void(std::uint64_t done,
                                        std::uint64_t total,
                                        double cell_wall_seconds)>;

  /// The whole submit conversation: send the spec text, read the ack,
  /// stream progress frames into `progress` (may be null) until the result
  /// header, then read the raw result frame.  On success returns the raw
  /// result bytes and sets *cached / *job_id (either may be null).  On any
  /// server error frame or protocol violation returns nullopt with the
  /// message in *error.
  [[nodiscard]] std::optional<std::string> submit_and_stream(
      const std::string& spec_text, const ProgressFn& progress, bool* cached,
      std::uint64_t* job_id, std::string* error);

 private:
  int fd_ = -1;
};

}  // namespace pef::serve
